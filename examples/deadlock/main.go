// Deadlock demonstration — Chapter 6's opening argument, executed.
//
// Part 1 replays Fig. 6.1: two nCUBE-2 style lock-step broadcast trees
// from adjacent nodes of a 3-cube acquire channels the other needs and
// block forever; the channel dependency graph shows the cycle.
//
// Part 2 replays Fig. 6.4: the same effect for two X-first tree
// multicasts on a 4x3 mesh.
//
// Part 3 runs the SAME workloads under the dissertation's deadlock-free
// schemes — the double-channel X-first tree and dual-path routing — and
// watches them drain.
//
// This example reaches into the internal packages on purpose: it
// demonstrates the unsafe schemes, which the public API does not offer.
package main

import (
	"fmt"
	"log"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/topology"
	"multicastnet/internal/wormsim"
)

const messageFlits = 128

// drains steps the network until it empties or stalls; it reports whether
// the workload completed.
func drains(n *wormsim.Network) bool {
	var lastProgress int64
	for n.ActiveWorms() > 0 {
		if n.Step() {
			lastProgress = n.Cycle()
		} else if n.DetectDeadlock() != nil || n.Cycle()-lastProgress > 10_000 {
			return false
		}
	}
	return true
}

func main() {
	// --- Part 1: Fig. 6.1 on a 3-cube -------------------------------
	cube := topology.NewHypercube(3)
	fmt.Println("Fig 6.1 — two lock-step broadcast trees on a 3-cube (nodes 000 and 001):")

	rec := dfr.NewDependencyRecorder()
	t0 := dfr.ECubeBroadcastTree(cube, 0b000)
	t1 := dfr.ECubeBroadcastTree(cube, 0b001)
	rec.AddTree(t0)
	rec.AddTree(t1)
	fmt.Printf("  channel dependency cycle: %v\n", rec.FindCycle())

	net := wormsim.NewNetwork(cube)
	net.InjectMulticast(nil, []dfr.TreeRoute{t0}, messageFlits)
	net.InjectMulticast(nil, []dfr.TreeRoute{t1}, messageFlits)
	if drains(net) {
		log.Fatal("expected the broadcasts to deadlock")
	}
	fmt.Printf("  simulator: blocked forever after cycle %d with %d worms stuck\n\n",
		net.Cycle(), net.ActiveWorms())

	// --- Part 2: Fig. 6.4 on a 4x3 mesh ------------------------------
	mesh := topology.NewMesh2D(4, 3)
	id := func(x, y int) topology.NodeID { return mesh.ID(x, y) }
	m0 := core.MustMulticastSet(mesh, id(1, 1), []topology.NodeID{id(0, 2), id(3, 1)})
	m1 := core.MustMulticastSet(mesh, id(2, 1), []topology.NodeID{id(0, 1), id(3, 0)})
	fmt.Println("Fig 6.4 — two X-first tree multicasts on a 4x3 mesh:")
	fmt.Printf("  M0: src (1,1) -> (0,2),(3,1);  M1: src (2,1) -> (0,1),(3,0)\n")

	naive := dfr.NaiveTreeCDG(mesh, []core.MulticastSet{m0, m1})
	fmt.Printf("  channel dependency cycle: %v\n", naive.FindCycle())

	net2 := wormsim.NewNetwork(mesh)
	net2.InjectMulticast(nil, dfr.XFirstTrees(mesh, m0), messageFlits)
	net2.InjectMulticast(nil, dfr.XFirstTrees(mesh, m1), messageFlits)
	if drains(net2) {
		log.Fatal("expected the multicasts to deadlock")
	}
	fmt.Printf("  simulator: blocked forever after cycle %d\n\n", net2.Cycle())

	// --- Part 3: the deadlock-free schemes on the same workload ------
	fmt.Println("Chapter 6 fixes, same two multicasts:")

	safeTree := wormsim.NewNetwork(mesh)
	safeTree.InjectMulticast(nil, dfr.DoubleChannelXFirst(mesh, m0), messageFlits)
	safeTree.InjectMulticast(nil, dfr.DoubleChannelXFirst(mesh, m1), messageFlits)
	if !drains(safeTree) {
		log.Fatal("double-channel X-first should not deadlock")
	}
	fmt.Printf("  double-channel X-first tree: drained in %d cycles\n", safeTree.Cycle())

	l, err := core.LabelingFor(mesh)
	if err != nil {
		log.Fatal(err)
	}
	safePath := wormsim.NewNetwork(mesh)
	safePath.InjectMulticast(dfr.DualPath(mesh, l, m0).Paths, nil, messageFlits)
	safePath.InjectMulticast(dfr.DualPath(mesh, l, m1).Paths, nil, messageFlits)
	if !drains(safePath) {
		log.Fatal("dual-path should not deadlock")
	}
	fmt.Printf("  dual-path routing:           drained in %d cycles\n", safePath.Cycle())
}
