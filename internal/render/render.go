// Package render draws 2D-mesh routing patterns as ASCII diagrams in the
// style of the dissertation's figures: nodes in a grid ((0,0) at the
// bottom left, as the paper draws them), with the channels a route uses
// marked between them. cmd/mcroute uses it to show routing patterns; the
// goldens in the tests double as readable documentation of the worked
// examples.
package render

import (
	"sort"
	"strings"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/topology"
)

// cell markers.
const (
	markPlain  = '.' // node not on any route
	markRoute  = '+' // forwarding node
	markSource = 'S'
	markDest   = 'D'
)

// Mesh renders the channels of a routing pattern over mesh m for the
// multicast set k. Channels may carry any class; classes are collapsed
// (the drawing marks physical links). The output uses three-column node
// spacing: horizontal links are drawn as "---", vertical links as "|".
func Mesh(m *topology.Mesh2D, k core.MulticastSet, chans []dfr.Channel) string {
	destSet := k.DestSet()
	onRoute := make(map[topology.NodeID]bool)
	hlink := make(map[[2]int]bool) // left node (x, y) of a used horizontal link
	vlink := make(map[[2]int]bool) // lower node (x, y) of a used vertical link
	for _, c := range chans {
		onRoute[c.From] = true
		onRoute[c.To] = true
		fx, fy := m.XY(c.From)
		tx, ty := m.XY(c.To)
		switch {
		case fy == ty && (fx-tx == 1 || tx-fx == 1):
			if tx < fx {
				fx = tx
			}
			hlink[[2]int{fx, fy}] = true
		case fx == tx && (fy-ty == 1 || ty-fy == 1):
			if ty < fy {
				fy = ty
			}
			vlink[[2]int{fx, fy}] = true
		default:
			// Not a mesh link; skip rather than panic so partial
			// patterns can still be inspected.
		}
	}

	var b strings.Builder
	for y := m.Height - 1; y >= 0; y-- {
		// Node row.
		for x := 0; x < m.Width; x++ {
			id := m.ID(x, y)
			ch := markPlain
			switch {
			case id == k.Source:
				ch = markSource
			case destSet[id]:
				ch = markDest
			case onRoute[id]:
				ch = markRoute
			}
			b.WriteRune(ch)
			if x < m.Width-1 {
				if hlink[[2]int{x, y}] {
					b.WriteString("---")
				} else {
					b.WriteString("   ")
				}
			}
		}
		b.WriteByte('\n')
		// Vertical-link row.
		if y > 0 {
			for x := 0; x < m.Width; x++ {
				if vlink[[2]int{x, y - 1}] {
					b.WriteByte('|')
				} else {
					b.WriteByte(' ')
				}
				if x < m.Width-1 {
					b.WriteString("   ")
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// MeshStar renders a multicast star.
func MeshStar(m *topology.Mesh2D, k core.MulticastSet, s dfr.Star) string {
	var chans []dfr.Channel
	for _, p := range s.Paths {
		chans = append(chans, p.Channels()...)
	}
	return Mesh(m, k, chans)
}

// MeshTrees renders a set of tree routes (e.g. the four double-channel
// X-first subnetwork trees) as one pattern.
func MeshTrees(m *topology.Mesh2D, k core.MulticastSet, trees []dfr.TreeRoute) string {
	var chans []dfr.Channel
	for _, t := range trees {
		chans = append(chans, t.Edges...)
	}
	return Mesh(m, k, chans)
}

// MeshEdges renders an STResult-style directed edge map.
func MeshEdges(m *topology.Mesh2D, k core.MulticastSet, edges map[[2]topology.NodeID]int) string {
	chans := make([]dfr.Channel, 0, len(edges))
	for e := range edges {
		chans = append(chans, dfr.Channel{From: e[0], To: e[1]})
	}
	sort.Slice(chans, func(i, j int) bool {
		if chans[i].From != chans[j].From {
			return chans[i].From < chans[j].From
		}
		return chans[i].To < chans[j].To
	})
	return Mesh(m, k, chans)
}
