package topology

import (
	"fmt"
	"sync"
)

// GraphDelta is one batch of physical host-graph changes: hardware that
// fails and hardware that comes back. It is the topology-level half of a
// fault/repair delta (virtual-channel faults do not change the physical
// graph and are handled by the routing layers above).
type GraphDelta struct {
	FailNodes, RepairNodes []NodeID
	FailLinks, RepairLinks []Link
}

// Empty reports a delta with no changes.
func (d GraphDelta) Empty() bool {
	return len(d.FailNodes) == 0 && len(d.RepairNodes) == 0 &&
		len(d.FailLinks) == 0 && len(d.RepairLinks) == 0
}

// LiveMasked is the incremental counterpart of Masked: a masked view of a
// base topology whose dead sets evolve by GraphDelta in O(|delta|) work
// instead of a full rebuild. Every read — Neighbors order, Adjacent,
// Distance, Reachable — is defined to agree exactly with a fresh
// NewMasked built from the same dead sets, so routing over a LiveMasked
// is byte-identical to routing over the equivalent immutable Masked.
//
// Concurrency contract (the epoch protocol): Apply is a write and must
// not run concurrently with any read; between Apply calls — one epoch —
// any number of goroutines may read. Distance rows are computed lazily by
// per-source BFS and memoized for the current epoch behind an internal
// mutex, so concurrent readers within an epoch are safe.
type LiveMasked struct {
	base      Topology
	epoch     uint64
	deadNode  []bool
	deadLink  map[Link]bool
	neighbors [][]NodeID

	// Lazily computed per-source distance rows of the current epoch.
	// Unreachable pairs hold Nodes(), exactly like Masked.
	mu   sync.Mutex
	rows map[NodeID][]int16
}

// NewLiveMasked returns the live masked view of base with every node and
// link healthy (epoch 0).
func NewLiveMasked(base Topology) *LiveMasked {
	n := base.Nodes()
	m := &LiveMasked{
		base:      base,
		deadNode:  make([]bool, n),
		deadLink:  make(map[Link]bool),
		neighbors: make([][]NodeID, n),
		rows:      make(map[NodeID][]int16),
	}
	for v := 0; v < n; v++ {
		m.neighbors[v] = base.Neighbors(NodeID(v), nil)
	}
	return m
}

// Apply advances the view by one delta: failed nodes and links leave the
// graph, repaired ones return. Only the neighbor rows of affected nodes
// are rebuilt — O(sum of affected degrees) — and the epoch counter is
// bumped, discarding the memoized distance rows. Failing dead hardware
// and repairing healthy hardware are no-ops. It returns the nodes whose
// adjacency rows changed (ascending, deduplicated), which callers use to
// patch derived per-node tables in place.
func (m *LiveMasked) Apply(d GraphDelta) []NodeID {
	n := m.base.Nodes()
	touched := make(map[NodeID]bool)
	touchNode := func(v NodeID) {
		checkNode(v, n, m)
		touched[v] = true
		for _, w := range m.base.Neighbors(v, nil) {
			touched[w] = true
		}
	}
	for _, v := range d.FailNodes {
		checkNode(v, n, m)
		if !m.deadNode[v] {
			m.deadNode[v] = true
			touchNode(v)
		}
	}
	for _, v := range d.RepairNodes {
		checkNode(v, n, m)
		if m.deadNode[v] {
			m.deadNode[v] = false
			touchNode(v)
		}
	}
	touchLink := func(l Link, fail bool) {
		l = NormLink(l.U, l.V)
		checkNode(l.U, n, m)
		checkNode(l.V, n, m)
		if !m.base.Adjacent(l.U, l.V) {
			return // non-edges are ignored, as in NewMasked
		}
		if m.deadLink[l] == fail {
			return
		}
		if fail {
			m.deadLink[l] = true
		} else {
			delete(m.deadLink, l)
		}
		touched[l.U] = true
		touched[l.V] = true
	}
	for _, l := range d.FailLinks {
		touchLink(l, true)
	}
	for _, l := range d.RepairLinks {
		touchLink(l, false)
	}

	changed := make([]NodeID, 0, len(touched))
	for v := range touched {
		changed = append(changed, v)
	}
	sortNodeIDs(changed)
	var buf []NodeID
	for _, v := range changed {
		m.neighbors[v] = m.rebuildRow(v, m.neighbors[v][:0], &buf)
	}
	m.epoch++
	m.mu.Lock()
	m.rows = make(map[NodeID][]int16)
	m.mu.Unlock()
	return changed
}

// rebuildRow refilters v's base neighbor list against the dead sets,
// reusing row's storage. The filter order matches NewMasked exactly.
func (m *LiveMasked) rebuildRow(v NodeID, row []NodeID, buf *[]NodeID) []NodeID {
	if m.deadNode[v] {
		return row[:0]
	}
	*buf = m.base.Neighbors(v, (*buf)[:0])
	for _, p := range *buf {
		if m.deadNode[p] || m.deadLink[NormLink(v, p)] {
			continue
		}
		row = append(row, p)
	}
	return row
}

// Epoch returns the number of deltas applied so far.
func (m *LiveMasked) Epoch() uint64 { return m.epoch }

// Base returns the underlying healthy topology.
func (m *LiveMasked) Base() Topology { return m.base }

// Name implements Topology. Unlike Masked's fingerprint name it is
// epoch-stamped: live views are identified by their position in the delta
// stream, not by their dead sets, and must never be used as shared-state
// cache keys.
func (m *LiveMasked) Name() string {
	return fmt.Sprintf("%s/live@%d", m.base.Name(), m.epoch)
}

// Nodes implements Topology: the id space of the base topology, dead
// nodes included.
func (m *LiveMasked) Nodes() int { return m.base.Nodes() }

// MaxDegree implements Topology (the base bound; masking only removes
// links).
func (m *LiveMasked) MaxDegree() int { return m.base.MaxDegree() }

// Neighbors implements Topology over the current epoch's masked graph.
func (m *LiveMasked) Neighbors(v NodeID, buf []NodeID) []NodeID {
	checkNode(v, len(m.deadNode), m)
	return append(buf, m.neighbors[v]...)
}

// NeighborsShared returns v's live adjacency row without copying. The
// returned slice is replaced wholesale (never mutated) by Apply, so
// holding it across epochs yields a stale — not corrupted — view;
// LiveState re-fetches rows for every node Apply reports changed.
func (m *LiveMasked) NeighborsShared(v NodeID) []NodeID {
	checkNode(v, len(m.deadNode), m)
	return m.neighbors[v]
}

// Adjacent implements Topology over the current epoch's masked graph.
func (m *LiveMasked) Adjacent(u, v NodeID) bool {
	checkNode(u, len(m.deadNode), m)
	checkNode(v, len(m.deadNode), m)
	return !m.deadNode[u] && !m.deadNode[v] &&
		!m.deadLink[NormLink(u, v)] && m.base.Adjacent(u, v)
}

// Distance implements Topology over the masked graph; unreachable pairs
// return Nodes(), exactly like Masked. Rows are computed by BFS on first
// use per source and memoized for the epoch.
func (m *LiveMasked) Distance(u, v NodeID) int {
	n := len(m.deadNode)
	checkNode(u, n, m)
	checkNode(v, n, m)
	return int(m.row(u)[v])
}

// Reachable reports whether a path exists between u and v in the current
// epoch's masked graph.
func (m *LiveMasked) Reachable(u, v NodeID) bool {
	return m.Distance(u, v) < len(m.deadNode)
}

// Diameter implements Topology: the maximum distance over reachable
// pairs of the current epoch. It materializes every distance row, so it
// costs a full all-pairs BFS on first use per epoch; routing never calls
// it on masked views.
func (m *LiveMasked) Diameter() int {
	diam := 0
	n := len(m.deadNode)
	for s := 0; s < n; s++ {
		if m.deadNode[s] {
			continue
		}
		for _, d := range m.row(NodeID(s)) {
			if int(d) < n && int(d) > diam {
				diam = int(d)
			}
		}
	}
	return diam
}

// NodeDead reports whether v is currently masked out.
func (m *LiveMasked) NodeDead(v NodeID) bool {
	checkNode(v, len(m.deadNode), m)
	return m.deadNode[v]
}

// LinkDead reports whether the (undirected) link between u and v is
// currently masked out, either directly or via a dead endpoint.
func (m *LiveMasked) LinkDead(u, v NodeID) bool {
	checkNode(u, len(m.deadNode), m)
	checkNode(v, len(m.deadNode), m)
	return m.deadNode[u] || m.deadNode[v] || m.deadLink[NormLink(u, v)]
}

// row returns u's memoized distance row, computing it by BFS over the
// live adjacency on first use in the current epoch.
func (m *LiveMasked) row(u NodeID) []int16 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.rows[u]; ok {
		return r
	}
	n := len(m.deadNode)
	unreach := int16(n)
	r := make([]int16, n)
	for i := range r {
		r[i] = unreach
	}
	if !m.deadNode[u] {
		r[u] = 0
		queue := make([]NodeID, 0, n)
		queue = append(queue, u)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			dc := r[cur]
			for _, w := range m.neighbors[cur] {
				if r[w] == unreach {
					r[w] = dc + 1
					queue = append(queue, w)
				}
			}
		}
	}
	m.rows[u] = r
	return r
}

// sortNodeIDs sorts ids ascending (insertion sort; delta fan-outs are a
// handful of nodes).
func sortNodeIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
