// Command mcworkload runs the workload study: how routing-scheme and
// window-packer rankings shift when the paper's uniform fixed-rate
// traffic is replaced by realistic workload models (internal/workload).
// Six profiles — uniform, zipf, hotspot, transpose, collective, and
// bursty (zipf popularity under ON/OFF arrivals) — each drive the
// identical request stream through every routing scheme on the 64x64
// mesh and the 4096-node hypercube, and through the fifo and
// congestion-aware packers on the mesh.
//
// Every committed output is byte-identical at any -parallel (sweep and
// planner workers) and -shards (simulator shard count) value.
//
// Usage:
//
//	mcworkload -out results             # write workload_* figures (txt+csv) and workload_study.txt
//	mcworkload -quick                   # reduced streams on small topologies
//	mcworkload -parallel 4 -shards 4    # worker/shard counts (outputs unchanged)
//	mcworkload -record zipf -o s.trace  # record one model's stream to a trace file
//	mcworkload -replay s.trace          # re-run the scheme sweep point from a trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"multicastnet/internal/experiments"
	"multicastnet/internal/profiling"
	"multicastnet/internal/stats"
	"multicastnet/internal/workload"
)

func main() {
	out := flag.String("out", "results", "output directory")
	quick := flag.Bool("quick", false, "reduced streams on small topologies")
	seed := flag.Uint64("seed", 1990, "study seed")
	csv := flag.Bool("csv", false, "emit CSV on stdout instead of writing files")
	parallel := flag.Int("parallel", 0, "sweep and planner workers (0 = GOMAXPROCS, 1 = sequential; outputs are byte-identical)")
	shards := flag.Int("shards", 0, "simulator shard count (0/1 = serial; outputs are byte-identical)")
	record := flag.String("record", "", "record the named model's stream to -o instead of running the study")
	recordOut := flag.String("o", "", "trace output path for -record (default stdout)")
	replay := flag.String("replay", "", "print a summary of a trace file and exit")
	prof := profiling.AddFlags()
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	opts := experiments.WorkloadDefaults()
	if *quick {
		opts = experiments.WorkloadQuick()
	}
	opts.Seed = *seed
	opts.Parallel = *parallel
	opts.Shards = *shards

	if *record != "" {
		if err := recordTrace(*record, *recordOut, opts); err != nil {
			fatal(err)
		}
		return
	}
	if *replay != "" {
		if err := replayTrace(*replay); err != nil {
			fatal(err)
		}
		return
	}

	res := experiments.WorkloadStudy(opts)

	figs := append([]*stats.Figure{}, res.SchemeFigs...)
	figs = append(figs, res.PackerThroughput, res.PackerP99)
	if *csv {
		for _, fig := range figs {
			if err := fig.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, fig := range figs {
		base := strings.ReplaceAll(strings.ToLower(fig.ID), " ", "_")
		writeFigure(*out, base+".txt", fig, false)
		writeFigure(*out, base+".csv", fig, true)
		fmt.Printf("wrote %s\n", base)
	}
	writeSummary(*out, opts, res)
	fmt.Printf("wrote workload_study.txt (gomaxprocs=%d)\n", res.GOMAXPROCS)
}

// recordTrace writes the named model's stream over the study's first
// topology as a replayable trace file.
func recordTrace(model, path string, opts experiments.WorkloadOptions) error {
	tr, err := experiments.RecordWorkload(model, opts)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteTrace(w, tr); err != nil {
		return err
	}
	if path != "" {
		fmt.Printf("recorded %d requests (%s on %s) to %s\n",
			len(tr.Reqs), model, tr.Topo, path)
	}
	return nil
}

// replayTrace parses a trace and prints its provenance and shape — the
// proof that the file round-trips.
func replayTrace(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	tr, err := workload.ParseTrace(b)
	if err != nil {
		return err
	}
	dests, last := 0, int64(0)
	src := tr.Source()
	n := 0
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		n++
		dests += len(r.Dests)
		last = r.At
	}
	fmt.Printf("trace: %s on %s (%d nodes), seed %d\n", tr.Spec.Model, tr.Topo, tr.Nodes, tr.Seed)
	fmt.Printf("requests: %d, destinations: %d (mean %.2f), span: %d cycles\n",
		n, dests, float64(dests)/float64(max(n, 1)), last)
	return nil
}

// writeSummary records every point of both sweeps plus the model legend
// and the ranking comparison. All fields are deterministic, so the file
// participates in the byte-identity check (make check-workload).
func writeSummary(dir string, opts experiments.WorkloadOptions, res experiments.WorkloadStudyResult) {
	f, err := os.Create(filepath.Join(dir, "workload_study.txt"))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "Workload study: scheme and packer rankings under realistic traffic\n")
	fmt.Fprintf(f, "%d requests per stream, %d-group pool, mean %d destinations,\n",
		opts.Requests, opts.Groups, opts.AvgDests)
	fmt.Fprintf(f, "%d-flit messages, mean inter-arrival gap %g cycles, zipf s=%g.\n",
		opts.Flits, opts.MeanGap, opts.ZipfS)
	fmt.Fprintf(f, "Each (topology, model) pair uses one pinned stream: every scheme\n")
	fmt.Fprintf(f, "and packer carries identical requests (paired comparison).\n")
	fmt.Fprintf(f, "Deterministic at any -parallel and -shards value.\n\n")

	fmt.Fprintf(f, "model index legend:\n")
	for i, m := range res.Models {
		fmt.Fprintf(f, "  %d = %s\n", i+1, m)
	}

	fmt.Fprintf(f, "\nscheme sweep (wormsim, stream run to drain):\n")
	fmt.Fprintf(f, "%-5s %-10s %-10s %9s %9s %9s %9s %9s %5s\n",
		"topo", "model", "scheme", "delivered", "cycles", "net(us)", "compl(us)", "thr/ms", "dead")
	for _, p := range res.Points {
		fmt.Fprintf(f, "%-5s %-10s %-10s %9d %9d %9.2f %9.2f %9.1f %5v\n",
			p.Topo, p.Model, p.Scheme, p.Delivered, p.Cycles,
			p.AvgLatencyMicros, p.AvgCompletionMicros, p.ThroughputPerMs, p.Deadlocked)
	}

	fmt.Fprintf(f, "\npacker sweep (sched.Serve on the %s topology, dual-path):\n", topoName(opts))
	fmt.Fprintf(f, "%-10s %-6s %9s %9s %9s %9s %7s %8s %7s %5s\n",
		"model", "policy", "thr/kcyc", "p50", "p99", "mean", "maxIF", "defer", "force", "hit")
	for _, p := range res.PackerPoints {
		fmt.Fprintf(f, "%-10s %-6s %9.2f %9.0f %9.0f %9.0f %7d %8d %7d %5.2f\n",
			p.Model, p.Policy, p.ThroughputPerKCycle, p.P50Latency, p.P99Latency,
			p.MeanLatency, p.MaxInFlight, p.Deferrals, p.ForceAdmits, p.CacheHitRate)
	}

	writeRankings(f, opts, res)
}

func topoName(opts experiments.WorkloadOptions) string {
	if opts.Topos != nil {
		return opts.Topos[0].Name
	}
	return "mesh"
}

// writeRankings spells out the study's headline: the scheme order per
// (topology, model) and whether it shifts away from the uniform
// baseline, plus the packer comparison per model.
func writeRankings(w io.Writer, opts experiments.WorkloadOptions, res experiments.WorkloadStudyResult) {
	topos := []string{"mesh", "cube"}
	if opts.Topos != nil {
		topos = topos[:0]
		for _, t := range opts.Topos {
			topos = append(topos, t.Name)
		}
	}
	fmt.Fprintf(w, "\nscheme ranking by mean completion latency (best first):\n")
	for _, topo := range topos {
		base := res.SchemeRanking(topo, "uniform")
		for _, m := range res.Models {
			r := res.SchemeRanking(topo, m)
			if len(r) == 0 {
				continue
			}
			mark := ""
			if m != "uniform" && len(base) > 0 && strings.Join(r, ",") != strings.Join(base, ",") {
				mark = "   <- differs from uniform"
			}
			fmt.Fprintf(w, "  %-5s %-10s %s%s\n", topo, m, strings.Join(r, " > "), mark)
		}
	}

	fmt.Fprintf(w, "\npacker comparison (sched vs fifo):\n")
	for _, m := range res.Models {
		fifo, schd := res.PackerComparison(m)
		if fifo.Policy == "" || schd.Policy == "" {
			continue
		}
		thr := 0.0
		if fifo.ThroughputPerKCycle > 0 {
			thr = 100 * (schd.ThroughputPerKCycle/fifo.ThroughputPerKCycle - 1)
		}
		p99 := 0.0
		if fifo.P99Latency > 0 {
			p99 = 100 * (schd.P99Latency/fifo.P99Latency - 1)
		}
		fmt.Fprintf(w, "  %-10s throughput %+6.1f%%  p99 %+6.1f%%\n", m, thr, p99)
	}
}

func writeFigure(dir, name string, fig *stats.Figure, csv bool) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if csv {
		err = fig.WriteCSV(f)
	} else {
		err = fig.WriteTable(f)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcworkload:", err)
	os.Exit(1)
}
