package switching

import (
	"math"
	"testing"
)

func TestLatencyClosedForms(t *testing.T) {
	p := DefaultParams() // L=128, B=20, Lh=2, Lc=2, Lf=1
	const d = 10
	cases := []struct {
		tech Technology
		want float64
	}{
		{StoreAndForward, (128.0 / 20) * (d + 1)},
		{VirtualCutThrough, (2.0/20)*d + 128.0/20},
		{CircuitSwitching, (2.0/20)*d + 128.0/20},
		{Wormhole, (1.0/20)*d + 128.0/20},
	}
	for _, c := range cases {
		if got := Latency(c.tech, p, d); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: latency %.4f, want %.4f", c.tech, got, c.want)
		}
	}
}

// TestFig23Shape checks the qualitative content of Fig. 2.3: for long
// messages, store-and-forward latency grows linearly with distance while
// the pipelined technologies are nearly distance-insensitive.
func TestFig23Shape(t *testing.T) {
	p := DefaultParams()
	sfSlope := DistanceSensitivity(StoreAndForward, p)
	whSlope := DistanceSensitivity(Wormhole, p)
	if sfSlope <= 10*whSlope {
		t.Errorf("store-and-forward slope %.3f should dwarf wormhole slope %.3f", sfSlope, whSlope)
	}
	// At distance 0 (delivery to a neighbor-free path) all technologies
	// need the same L/B serialization time.
	base := p.MessageBytes / p.Bandwidth
	for _, tech := range []Technology{StoreAndForward, VirtualCutThrough, CircuitSwitching, Wormhole} {
		if got := Latency(tech, p, 0); math.Abs(got-base) > 1e-9 {
			t.Errorf("%s: zero-hop latency %.3f, want %.3f", tech, got, base)
		}
	}
}

func TestLatencyMonotoneInDistance(t *testing.T) {
	p := DefaultParams()
	for _, tech := range []Technology{StoreAndForward, VirtualCutThrough, CircuitSwitching, Wormhole} {
		prev := -1.0
		for d := 0; d <= 64; d++ {
			cur := Latency(tech, p, d)
			if cur < prev {
				t.Errorf("%s: latency not monotone at d=%d", tech, d)
			}
			prev = cur
		}
	}
}

func TestTechnologyString(t *testing.T) {
	if StoreAndForward.String() != "store-and-forward" || Wormhole.String() != "wormhole" {
		t.Error("bad String()")
	}
	if Technology(99).String() == "" {
		t.Error("unknown technology should still print")
	}
}

func TestLatencyValidation(t *testing.T) {
	for i, fn := range []func(){
		func() { Latency(Wormhole, Params{Bandwidth: 0}, 1) },
		func() { Latency(Wormhole, DefaultParams(), -1) },
		func() { Latency(Technology(9), DefaultParams(), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
