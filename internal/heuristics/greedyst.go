package heuristics

import (
	"fmt"

	"multicastnet/internal/core"
	"multicastnet/internal/topology"
)

// RegionTopology is the topology contract of the greedy ST algorithm: it
// needs constant-time location of the node nearest to a target among all
// nodes on shortest paths between two ends (Section 5.2).
type RegionTopology interface {
	topology.Topology
	topology.ShortestRegion
}

// STResult is the routing pattern produced by a multicast tree/subgraph
// algorithm under distributed execution: the multiset of link
// transmissions and per-destination delivery depths.
type STResult struct {
	// Links counts message transmissions over links — the traffic metric
	// of Chapter 7.
	Links int
	// Edges maps each directed link (from, to) to the number of message
	// copies sent over it.
	Edges map[[2]topology.NodeID]int
	// Delivered maps each destination to the hop count at which its copy
	// arrived.
	Delivered map[topology.NodeID]int
}

func newSTResult() *STResult {
	return &STResult{
		Edges:     make(map[[2]topology.NodeID]int),
		Delivered: make(map[topology.NodeID]int),
	}
}

func (r *STResult) send(from, to topology.NodeID) {
	r.Edges[[2]topology.NodeID{from, to}]++
	r.Links++
}

// MaxDepth returns the largest delivery depth.
func (r *STResult) MaxDepth() int {
	maxd := 0
	for _, d := range r.Delivered {
		if d > maxd {
			maxd = d
		}
	}
	return maxd
}

// Validate checks that every destination received the message and that
// every used link is a host-graph edge.
func (r *STResult) Validate(t topology.Topology, k core.MulticastSet) error {
	for _, d := range k.Dests {
		if _, ok := r.Delivered[d]; !ok {
			return fmt.Errorf("heuristics: destination %d never delivered", d)
		}
	}
	for e := range r.Edges {
		if !t.Adjacent(e[0], e[1]) {
			return fmt.Errorf("heuristics: transmission over non-edge (%d,%d)", e[0], e[1])
		}
	}
	return nil
}

// IsTreePattern reports whether the used links, viewed as undirected
// edges, form a tree (each link used once, connected, acyclic).
func (r *STResult) IsTreePattern() bool {
	und := make(map[[2]topology.NodeID]bool)
	nodes := make(map[topology.NodeID]int)
	nextIdx := 0
	idx := func(v topology.NodeID) int {
		if i, ok := nodes[v]; ok {
			return i
		}
		nodes[v] = nextIdx
		nextIdx++
		return nodes[v]
	}
	type edge struct{ a, b int }
	var edges []edge
	for e, n := range r.Edges {
		if n != 1 {
			return false
		}
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		key := [2]topology.NodeID{a, b}
		if und[key] {
			return false // link used in both directions
		}
		und[key] = true
		edges = append(edges, edge{idx(a), idx(b)})
	}
	if len(edges) != len(nodes)-1 {
		return false
	}
	// Union-find connectivity check.
	parent := make([]int, len(nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ra, rb := find(e.a), find(e.b)
		if ra == rb {
			return false
		}
		parent[ra] = rb
	}
	return true
}

// prepareGreedyST fills ws.sorted with the destinations in ascending
// order of distance from the source, ties broken by node id — the
// message-preparation step of Fig. 5.3.
func (ws *Workspace) prepareGreedyST(t topology.Topology, k core.MulticastSet) {
	ws.keys = ws.keys[:0]
	for _, d := range k.Dests {
		ws.keys = append(ws.keys, int64(t.Distance(k.Source, d))<<32|int64(d))
	}
	ws.sortPacked()
}

// GreedySTPrepare is the message-preparation part (Fig. 5.3): sort the
// destinations in ascending order of distance from the source.
func GreedySTPrepare(t topology.Topology, k core.MulticastSet) []topology.NodeID {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	ws.prepareGreedyST(t, k)
	out := make([]topology.NodeID, len(ws.sorted))
	copy(out, ws.sorted)
	return out
}

// trAdd appends a contracted-tree edge and marks both ends as tree
// members in ws.tmp.
func (ws *Workspace) trAdd(a, b topology.NodeID) {
	ws.trEdges = append(ws.trEdges, [2]topology.NodeID{a, b})
	ws.tmp.mark(int32(a))
	ws.tmp.mark(int32(b))
}

// buildGreedyTree runs Steps 3-4 of Fig. 5.4: starting from the edge
// (u, dests[0]), each further destination is attached at the nearest
// node over all shortest-path regions of current tree edges, splitting
// the host edge when the attachment point is interior. The contracted
// tree is left in ws.trEdges (insertion-ordered for determinism), with
// membership marks in ws.tmp.
func (ws *Workspace) buildGreedyTree(t RegionTopology, u topology.NodeID, dests []topology.NodeID) {
	ws.trEdges = ws.trEdges[:0]
	ws.tmp.reset(ws.nodes)
	ws.trAdd(u, dests[0])
	for i := 1; i < len(dests); i++ {
		ui := dests[i]
		if ws.tmp.has(int32(ui)) {
			continue // already a tree node (e.g. a Steiner point that is also a destination)
		}
		// Step 4(a)-(b): the nearest node to ui over all shortest-path
		// regions of current tree edges.
		var (
			bestV    topology.NodeID
			bestEdge int
			bestD    = -1
		)
		for ei, e := range ws.trEdges {
			v := t.NearestOnShortestPaths(e[0], e[1], ui)
			if d := t.Distance(ui, v); bestD < 0 || d < bestD {
				bestV, bestEdge, bestD = v, ei, d
			}
		}
		e := ws.trEdges[bestEdge]
		if bestV != e[0] && bestV != e[1] {
			// Step 4(c): split edge (s,t) at v.
			ws.trEdges[bestEdge] = [2]topology.NodeID{e[0], bestV}
			ws.trAdd(bestV, e[1])
		}
		if ui != bestV {
			// Step 4(d).
			ws.trAdd(bestV, ui)
		}
	}
}

// collectSons fills ws.sons with the contracted-tree neighbors of u, in
// edge-insertion order.
func (ws *Workspace) collectSons(u topology.NodeID) {
	ws.sons = ws.sons[:0]
	for _, e := range ws.trEdges {
		if e[0] == u {
			ws.sons = append(ws.sons, e[1])
		} else if e[1] == u {
			ws.sons = append(ws.sons, e[0])
		}
	}
}

// markSubtree marks (in ws.tmp) every node of the contracted subtree
// containing start when the edge back to parent is removed. The tree is
// acyclic, so a visited-marking DFS that seeds parent as visited yields
// exactly the parent-exclusion membership. Note this resets ws.tmp, so
// tree-membership marks from buildGreedyTree are consumed.
func (ws *Workspace) markSubtree(start, parent topology.NodeID) {
	ws.tmp.reset(ws.nodes)
	ws.tmp.mark(int32(parent))
	ws.tmp.mark(int32(start))
	ws.nstack = append(ws.nstack[:0], start)
	for len(ws.nstack) > 0 {
		v := ws.nstack[len(ws.nstack)-1]
		ws.nstack = ws.nstack[:len(ws.nstack)-1]
		for _, e := range ws.trEdges {
			var w topology.NodeID
			if e[0] == v {
				w = e[1]
			} else if e[1] == v {
				w = e[0]
			} else {
				continue
			}
			if !ws.tmp.has(int32(w)) {
				ws.tmp.mark(int32(w))
				ws.nstack = append(ws.nstack, w)
			}
		}
	}
}

// greedySTSplit is the replicate-node computation (Steps 3-5 of Fig. 5.4)
// at node u with remaining destinations dests (u excluded): it builds the
// local greedy Steiner tree and returns, for each son r of u, the sublist
// (r, destinations in r's subtree).
func greedySTSplit(t RegionTopology, u topology.NodeID, dests []topology.NodeID) [][]topology.NodeID {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	ws.ensure(t)
	ws.buildGreedyTree(t, u, dests)
	ws.collectSons(u)
	var out [][]topology.NodeID
	for _, r := range ws.sons {
		ws.markSubtree(r, u)
		list := []topology.NodeID{r}
		// Keep the original sorted order for the carried destinations.
		for _, d := range dests {
			if d != r && ws.tmp.has(int32(d)) {
				list = append(list, d)
			}
		}
		out = append(out, list)
	}
	return out
}

// GreedySTCarried runs the greedy ST algorithm in the paper's alternative
// implementation (end of Section 5.2): the source computes the complete
// greedy Steiner tree once and passes it in the message, so replicate
// nodes need no recomputation. The tree construction is identical
// (Steps 3–4 of Fig. 5.4 over the whole sorted destination list); each
// contracted tree edge is realized by a shortest path, so the total
// traffic is the sum of the contracted edge lengths. This is the variant
// used for the large Fig. 7.3/7.4 sweeps, where per-hop recomputation
// (O(k^2) at every replicate node) would dominate. It returns the link
// traffic; the full pattern stays in the workspace run log.
func (ws *Workspace) GreedySTCarried(t RegionTopology, k core.MulticastSet) int {
	router := ws.router(t)
	ws.begin(t, k)
	ws.prepareGreedyST(t, k)

	// Build the complete contracted tree at the source.
	ws.buildGreedyTree(t, k.Source, ws.sorted)

	// Walk the contracted tree from the source, realizing each edge by a
	// shortest path and accounting traffic and delivery depths.
	ws.deliver(k.Source, 0)
	ws.stack = append(ws.stack[:0], stVisit{node: k.Source, parent: k.Source, depth: 0})
	for len(ws.stack) > 0 {
		cur := ws.stack[len(ws.stack)-1]
		ws.stack = ws.stack[:len(ws.stack)-1]
		ws.deliver(cur.node, cur.depth)
		for _, e := range ws.trEdges {
			var next topology.NodeID
			if e[0] == cur.node {
				next = e[1]
			} else if e[1] == cur.node {
				next = e[0]
			} else {
				continue
			}
			if next == cur.parent {
				continue // the root's sentinel parent is itself, never adjacent
			}
			hops := int32(0)
			for at := cur.node; at != next; {
				nh := router.NextHopUnicast(at, next)
				ws.send(at, nh)
				at = nh
				hops++
			}
			ws.stack = append(ws.stack, stVisit{node: next, parent: cur.node, depth: cur.depth + hops})
		}
	}
	return len(ws.edges)
}

// GreedySTCarried runs the source-computed greedy ST variant and returns
// the delivered routing pattern. See Workspace.GreedySTCarried for the
// allocation-free form.
func GreedySTCarried(t RegionTopology, k core.MulticastSet) *STResult {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	ws.GreedySTCarried(t, k)
	return ws.stResult()
}

// GreedyST runs the greedy ST algorithm of Section 5.2 under distributed
// execution and returns the link traffic (pattern in the workspace run
// log). Bypass nodes forward the message one hop along a shortest path
// toward the sublist head using the topology's deterministic unicast
// router; replicate nodes rebuild the greedy Steiner subtree over their
// sublist and split it among their sons (Fig. 5.4). Messages carry their
// destination sublists as immutable segments of the workspace arena.
func (ws *Workspace) GreedyST(t RegionTopology, k core.MulticastSet) int {
	router := ws.router(t)
	ws.begin(t, k)
	ws.prepareGreedyST(t, k)

	// A message is (current node, hop depth, arena segment) with
	// segment[0] the replicate target.
	ws.arena = append(ws.arena[:0], k.Source)
	ws.arena = append(ws.arena, ws.sorted...)
	ws.msgs = append(ws.msgs[:0], stMsg{at: k.Source, off: 0, n: int32(len(ws.arena))})
	for head := 0; head < len(ws.msgs); head++ {
		msg := ws.msgs[head]
		list := ws.arena[msg.off : msg.off+msg.n]
		u := list[0]
		if msg.at != u {
			// Step 1: bypass node; forward toward u.
			next := router.NextHopUnicast(msg.at, u)
			ws.send(msg.at, next)
			ws.msgs = append(ws.msgs, stMsg{at: next, depth: msg.depth + 1, off: msg.off, n: msg.n})
			continue
		}
		// Arrived at the replicate target: deliver if it is a
		// destination.
		ws.deliver(u, msg.depth)
		rest := list[1:]
		if len(rest) == 0 {
			continue // Step 2
		}
		// Steps 3-5: split the remaining list among the sons of u. The
		// rest slice stays readable even if arena appends below reallocate
		// (segments are immutable; the old backing array is intact).
		ws.buildGreedyTree(t, u, rest)
		ws.collectSons(u)
		for _, r := range ws.sons {
			ws.markSubtree(r, u)
			off := int32(len(ws.arena))
			ws.arena = append(ws.arena, r)
			for _, d := range rest {
				if d != r && ws.tmp.has(int32(d)) {
					ws.arena = append(ws.arena, d)
				}
			}
			next := router.NextHopUnicast(u, r)
			ws.send(u, next)
			ws.msgs = append(ws.msgs, stMsg{at: next, depth: msg.depth + 1, off: off, n: int32(len(ws.arena)) - off})
		}
	}
	return len(ws.edges)
}

// GreedyST runs the greedy ST algorithm of Section 5.2 under distributed
// execution and returns the delivered routing pattern. See
// Workspace.GreedyST for the allocation-free form.
func GreedyST(t RegionTopology, k core.MulticastSet) *STResult {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	ws.GreedyST(t, k)
	return ws.stResult()
}
