package heuristics

import (
	"sync"

	"multicastnet/internal/core"
	"multicastnet/internal/graphx"
	"multicastnet/internal/topology"
)

// Workspace is the reusable scratch state of every heuristic kernel in
// this package. All per-call maps and slices of the original
// implementations are replaced by dense arrays indexed by NodeID,
// epoch-marked visited sets (reset in O(1) per call), an arena for the
// destination sublists carried in message headers, and a bitset
// destination set (core.NodeSet) sized to the topology. After the first
// call on a given topology the arrays are warm and the kernel methods
// (ws.GreedyST, ws.SortedMP, ws.KMB, ...) run with zero heap
// allocations; the exported package functions remain as thin wrappers
// that acquire a pooled workspace and materialize the original
// map-based result types.
//
// A Workspace is owned by one goroutine at a time. Use
// AcquireWorkspace/ReleaseWorkspace for a sync.Pool-backed instance, or
// NewWorkspace for an owned one (e.g. one per sweep worker).
type Workspace struct {
	nodes int // node count the per-node arrays are sized for

	dest core.NodeSet // destination bitset of the current call
	dlv  epochMarks   // delivered-once guard
	tmp  epochMarks   // contracted-tree membership / subtree marks
	vis  epochMarks   // KMB node-visited marks
	em   epochMarks   // KMB subgraph edge marks (arc-position space)

	keys   []int64           // packed (key, id) sort scratch
	sorted []topology.NodeID // destinations in prepared order
	nbuf   []topology.NodeID // Topology.Neighbors buffer
	path   []topology.NodeID // SortedMP/MC route

	edges     [][2]topology.NodeID // send log, in transmission order
	delivered []delivery           // first-delivery log, in delivery order

	trEdges [][2]topology.NodeID // contracted greedy Steiner tree
	sons    []topology.NodeID    // sons of the replicate node
	nstack  []topology.NodeID    // subtree-marking DFS stack
	stack   []stVisit            // carried-tree walk stack

	arena []topology.NodeID // message destination-list arena
	msgs  []stMsg           // FIFO message queue (head-indexed)

	dir  [12][]topology.NodeID // direction buckets (MT kernels)
	lenA []topology.NodeID     // LEN ping-pong partition buffers
	lenB []topology.NodeID

	rt     core.UnicastRouter // cached deterministic router
	rtTopo topology.Topology

	// KMB state (graphx vertex space, not topology NodeIDs).
	csr       *graphx.CSR
	csrFor    *graphx.Graph
	kdist     []int32    // terminal-major distance table, stride = |V|
	kqueue    []int32    // BFS queue (also the visit-order log)
	kparent   []int32    // spanning-tree parent
	kdeg      []int32    // spanning-tree degree
	ktList    []int32    // Prim tree members (terminal indices, insertion order)
	kclosure  [][2]int32 // closure MST edges (terminal indices)
	kmbPacked []int64    // pruned tree edges, packed (a<<32 | b), sorted
}

// delivery is one first-delivery event: destination and hop depth.
type delivery struct {
	node  topology.NodeID
	depth int32
}

// stVisit is a frame of the carried-tree realization walk.
type stVisit struct {
	node   topology.NodeID
	parent topology.NodeID
	depth  int32
}

// stMsg is a queued message: current node, hop depth, and the arena
// segment [off, off+n) holding its destination list. Segments are
// immutable once written, so they stay valid across arena growth.
type stMsg struct {
	at    topology.NodeID
	depth int32
	off   int32
	n     int32
	axis  trunkAxis // divided-greedy trunk dimension; unused elsewhere
}

// epochMarks is an O(1)-reset visited set: a slot is marked iff its
// stored epoch equals the current one.
type epochMarks struct {
	epoch uint32
	m     []uint32
}

// reset sizes the mark array for n slots and invalidates all marks.
func (e *epochMarks) reset(n int) {
	if len(e.m) < n {
		e.m = make([]uint32, n)
		e.epoch = 0
	}
	e.epoch++
	if e.epoch == 0 { // wrapped: every stale mark would look fresh
		clear(e.m)
		e.epoch = 1
	}
}

func (e *epochMarks) mark(i int32)     { e.m[i] = e.epoch }
func (e *epochMarks) has(i int32) bool { return e.m[i] == e.epoch }

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// AcquireWorkspace returns a pooled workspace. Release it with
// ReleaseWorkspace when the call tree that uses it finishes; the
// exported kernel wrappers do this internally, so per-request services
// (mcastsvc) and parallel sweeps pay no per-call setup.
func AcquireWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// ReleaseWorkspace returns ws to the pool. The caller must not retain
// any slice or result view obtained from ws.
func ReleaseWorkspace(ws *Workspace) { wsPool.Put(ws) }

// NewWorkspace returns an owned workspace (not pooled) — one per sweep
// worker keeps arrays maximally warm.
func NewWorkspace() *Workspace { return new(Workspace) }

// ensure sizes the per-node arrays for t.
func (ws *Workspace) ensure(t topology.Topology) {
	n := t.Nodes()
	ws.nodes = n
	if deg := t.MaxDegree(); cap(ws.nbuf) < deg {
		ws.nbuf = make([]topology.NodeID, deg)
	}
}

// begin starts a kernel call that logs transmissions and deliveries.
func (ws *Workspace) begin(t topology.Topology, k core.MulticastSet) {
	ws.ensure(t)
	ws.edges = ws.edges[:0]
	ws.delivered = ws.delivered[:0]
	ws.dlv.reset(ws.nodes)
	k.DestBits(ws.nodes, &ws.dest)
}

// send logs one message transmission over the link (from, to).
func (ws *Workspace) send(from, to topology.NodeID) {
	ws.edges = append(ws.edges, [2]topology.NodeID{from, to})
}

// deliver logs the first delivery to v when v is a destination.
func (ws *Workspace) deliver(v topology.NodeID, depth int32) {
	if ws.dest.Has(v) && !ws.dlv.has(int32(v)) {
		ws.dlv.mark(int32(v))
		ws.delivered = append(ws.delivered, delivery{node: v, depth: depth})
	}
}

// router returns the cached deterministic unicast router for t.
func (ws *Workspace) router(t topology.Topology) core.UnicastRouter {
	if ws.rtTopo != t {
		r, err := core.RouterFor(t)
		if err != nil {
			panic(err)
		}
		ws.rt, ws.rtTopo = r, t
	}
	return ws.rt
}

// stResult materializes the run log as the package's map-based result.
func (ws *Workspace) stResult() *STResult {
	res := newSTResult()
	for _, e := range ws.edges {
		res.send(e[0], e[1])
	}
	for _, d := range ws.delivered {
		res.Delivered[d.node] = int(d.depth)
	}
	return res
}

// Links returns the transmission count of the last tree/subgraph kernel
// run on ws.
func (ws *Workspace) Links() int { return len(ws.edges) }
