package core

import (
	"testing"
	"testing/quick"

	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

func TestNewMulticastSetValidation(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	if _, err := NewMulticastSet(m, 0, []topology.NodeID{1, 2}); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	bad := []struct {
		src   topology.NodeID
		dests []topology.NodeID
	}{
		{99, []topology.NodeID{1}},
		{0, nil},
		{0, []topology.NodeID{0}},
		{0, []topology.NodeID{1, 1}},
		{0, []topology.NodeID{-1}},
	}
	for i, c := range bad {
		if _, err := NewMulticastSet(m, c.src, c.dests); err == nil {
			t.Errorf("case %d: invalid set accepted", i)
		}
	}
}

// TestRoutingFunctionShortestPathsMesh verifies Lemma 6.1: for every node
// pair of a 2D mesh, the path selected by R under the boustrophedon
// labeling is a shortest path, with strictly monotone labels.
func TestRoutingFunctionShortestPathsMesh(t *testing.T) {
	for _, dims := range [][2]int{{4, 3}, {6, 6}, {5, 4}, {1, 6}, {7, 1}} {
		m := topology.NewMesh2D(dims[0], dims[1])
		l := labeling.NewMeshBoustrophedon(m)
		checkRoutingShortest(t, m, l)
	}
}

// TestRoutingFunctionShortestPathsCube verifies Lemma 6.4 for hypercubes.
func TestRoutingFunctionShortestPathsCube(t *testing.T) {
	for n := 1; n <= 6; n++ {
		h := topology.NewHypercube(n)
		l := labeling.NewHypercubeGray(h)
		checkRoutingShortest(t, h, l)
	}
}

func checkRoutingShortest(t *testing.T, topo topology.Topology, l labeling.Labeling) {
	t.Helper()
	for u := topology.NodeID(0); int(u) < topo.Nodes(); u++ {
		for v := topology.NodeID(0); int(v) < topo.Nodes(); v++ {
			if u == v {
				continue
			}
			path := RoutePath(topo, l, u, v)
			if len(path)-1 != topo.Distance(u, v) {
				t.Fatalf("%s: R path %d->%d has %d hops, distance %d",
					topo.Name(), u, v, len(path)-1, topo.Distance(u, v))
			}
			up := l.Label(u) < l.Label(v)
			for i := 1; i < len(path); i++ {
				if !topo.Adjacent(path[i-1], path[i]) {
					t.Fatalf("%s: R path uses non-edge", topo.Name())
				}
				a, b := l.Label(path[i-1]), l.Label(path[i])
				if up && a >= b || !up && a <= b {
					t.Fatalf("%s: R path %d->%d labels not monotone: %d then %d",
						topo.Name(), u, v, a, b)
				}
			}
		}
	}
}

// TestPoorHamiltonPathNotShortest pins the Fig. 6.10 observation: under a
// different (poor) Hamilton-path labeling the routing function R no
// longer always finds shortest paths. The comb-shaped Hamilton cycle of
// Table 5.1, used as a labeling of the 4x4 mesh, routes (0,3) to (0,0) in
// 5 hops where the distance is 3.
func TestPoorHamiltonPathNotShortest(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	c, err := labeling.MeshHamiltonCycle(m)
	if err != nil {
		t.Fatal(err)
	}
	l := labeling.PathLabeling{Cycle: c}
	if err := labeling.Verify(l, m); err != nil {
		t.Fatalf("comb labeling invalid: %v", err)
	}
	u, v := m.ID(0, 3), m.ID(0, 0)
	path := RoutePath(m, l, u, v)
	if len(path)-1 != 5 {
		t.Errorf("comb-labeling path (0,3)->(0,0) has %d hops, want the 5-hop detour", len(path)-1)
	}
	if m.Distance(u, v) != 3 {
		t.Errorf("true distance should be 3")
	}
	// The detour still respects label monotonicity (deadlock freedom is
	// preserved even under a poor labeling).
	for i := 1; i < len(path); i++ {
		if l.Label(path[i]) >= l.Label(path[i-1]) {
			t.Fatalf("labels not decreasing along %v", path)
		}
	}
}

// TestColumnMajorLabelingShortest documents that the transposed
// (column-major) serpentine is as good as the paper's row-major one: R
// stays shortest.
func TestColumnMajorLabelingShortest(t *testing.T) {
	m := topology.NewMesh2D(4, 3)
	checkRoutingShortest(t, m, labeling.NewMeshColumnMajor(m))
}

func TestXYRouterShortest(t *testing.T) {
	m := topology.NewMesh2D(6, 5)
	r := XYRouter{Mesh: m}
	for u := topology.NodeID(0); int(u) < m.Nodes(); u++ {
		for v := topology.NodeID(0); int(v) < m.Nodes(); v++ {
			if u == v {
				continue
			}
			p := UnicastPath(r, u, v)
			if len(p)-1 != m.Distance(u, v) {
				t.Fatalf("XY path %d->%d has %d hops, want %d", u, v, len(p)-1, m.Distance(u, v))
			}
		}
	}
}

func TestECubeRouterShortest(t *testing.T) {
	h := topology.NewHypercube(5)
	r := ECubeRouter{Cube: h}
	f := func(a, b uint8) bool {
		u := topology.NodeID(a) % topology.NodeID(h.Nodes())
		v := topology.NodeID(b) % topology.NodeID(h.Nodes())
		if u == v {
			return true
		}
		p := UnicastPath(r, u, v)
		return len(p)-1 == h.Distance(u, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXYZRouterShortest(t *testing.T) {
	m := topology.NewMesh3D(3, 3, 3)
	r := XYZRouter{Mesh: m}
	for u := topology.NodeID(0); int(u) < m.Nodes(); u += 3 {
		for v := topology.NodeID(0); int(v) < m.Nodes(); v += 2 {
			if u == v {
				continue
			}
			p := UnicastPath(r, u, v)
			if len(p)-1 != m.Distance(u, v) {
				t.Fatalf("XYZ path %d->%d has %d hops, want %d", u, v, len(p)-1, m.Distance(u, v))
			}
		}
	}
}

func TestRouterForAndLabelingFor(t *testing.T) {
	if _, err := RouterFor(topology.NewMesh2D(3, 3)); err != nil {
		t.Error(err)
	}
	if _, err := RouterFor(topology.NewHypercube(3)); err != nil {
		t.Error(err)
	}
	if _, err := RouterFor(topology.NewMesh3D(2, 2, 2)); err != nil {
		t.Error(err)
	}
	if _, err := RouterFor(topology.Ring(5)); err == nil {
		t.Error("expected error for ring")
	}
	if _, err := LabelingFor(topology.NewMesh2D(3, 3)); err != nil {
		t.Error(err)
	}
	if _, err := LabelingFor(topology.NewHypercube(3)); err != nil {
		t.Error(err)
	}
	if _, err := LabelingFor(topology.NewMesh3D(2, 2, 2)); err != nil {
		t.Error(err)
	}
	if _, err := LabelingFor(topology.NewKAryNCube(4, 2)); err != nil {
		t.Error(err)
	}
}

func TestPathValidateAndMetrics(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	k := MustMulticastSet(m, 0, []topology.NodeID{2, 5})
	good := Path{Nodes: []topology.NodeID{0, 1, 2, 6, 5}}
	if err := good.Validate(m, k, true); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if good.Traffic() != 4 {
		t.Errorf("traffic %d, want 4", good.Traffic())
	}
	if good.DistanceTo(5) != 4 || good.DistanceTo(15) != -1 {
		t.Error("DistanceTo wrong")
	}
	cases := []Path{
		{Nodes: []topology.NodeID{1, 2}},             // wrong start
		{Nodes: []topology.NodeID{0, 2, 5}},          // non-edge
		{Nodes: []topology.NodeID{0, 1, 2}},          // misses dest 5
		{Nodes: []topology.NodeID{0, 1, 0, 1, 2, 5}}, // revisit + non-edge at end anyway
	}
	for i, p := range cases {
		if err := p.Validate(m, k, true); err == nil {
			t.Errorf("case %d: invalid path accepted", i)
		}
	}
	// Walks are allowed in non-strict mode.
	walk := Path{Nodes: []topology.NodeID{0, 1, 2, 1, 5}}
	if err := walk.Validate(m, k, true); err == nil {
		t.Error("strict mode should reject revisits")
	}
	if err := walk.Validate(m, k, false); err != nil {
		t.Errorf("non-strict mode should allow walk: %v", err)
	}
}

func TestCycleValidate(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	k := MustMulticastSet(m, 0, []topology.NodeID{5})
	good := Cycle{Nodes: []topology.NodeID{0, 1, 5, 4}}
	if err := good.Validate(m, k, true); err != nil {
		t.Errorf("valid cycle rejected: %v", err)
	}
	if good.Traffic() != 4 {
		t.Errorf("cycle traffic %d, want 4", good.Traffic())
	}
	open := Cycle{Nodes: []topology.NodeID{0, 1, 5}}
	if err := open.Validate(m, k, true); err == nil {
		t.Error("non-closing cycle accepted")
	}
}

func TestTreeOperations(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	tr := NewTree(5)
	tr.AddEdge(5, 6)
	tr.AddEdge(5, 1)
	tr.AddEdge(6, 10)
	tr.AddEdge(6, 7)
	if tr.Size() != 5 || tr.Traffic() != 4 {
		t.Errorf("size=%d traffic=%d", tr.Size(), tr.Traffic())
	}
	if tr.Depth(10) != 2 || tr.Depth(5) != 0 || tr.Depth(12) != -1 {
		t.Error("Depth wrong")
	}
	if tr.MaxDepth() != 2 {
		t.Errorf("MaxDepth=%d", tr.MaxDepth())
	}
	if p, ok := tr.Parent(10); !ok || p != 6 {
		t.Error("Parent wrong")
	}
	if _, ok := tr.Parent(5); ok {
		t.Error("root has no parent")
	}
	var visited []topology.NodeID
	tr.Walk(func(v topology.NodeID) { visited = append(visited, v) })
	if len(visited) != 5 || visited[0] != 5 {
		t.Errorf("walk order %v", visited)
	}
	k := MustMulticastSet(m, 5, []topology.NodeID{10, 1})
	if err := tr.Validate(m, k); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	if err := tr.ValidateMT(m, k); err != nil {
		t.Errorf("valid MT rejected: %v", err)
	}
}

func TestTreeMTDetectsDetour(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	tr := NewTree(0)
	tr.AddEdge(0, 1)
	tr.AddEdge(1, 5)
	tr.AddEdge(5, 4)
	k := MustMulticastSet(m, 0, []topology.NodeID{4})
	if err := tr.Validate(m, k); err != nil {
		t.Errorf("valid ST rejected: %v", err)
	}
	if err := tr.ValidateMT(m, k); err == nil {
		t.Error("MT validation should reject non-shortest delivery")
	}
}

func TestTreePanics(t *testing.T) {
	tr := NewTree(0)
	tr.AddEdge(0, 1)
	for i, fn := range []func(){
		func() { tr.AddEdge(5, 6) }, // absent parent
		func() { tr.AddEdge(0, 1) }, // child already present
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestStarValidateAndMetrics(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	k := MustMulticastSet(m, 5, []topology.NodeID{7, 13})
	s := Star{Paths: []Path{
		{Nodes: []topology.NodeID{5, 6, 7}},
		{Nodes: []topology.NodeID{5, 9, 13}},
	}}
	if err := s.Validate(m, k); err != nil {
		t.Errorf("valid star rejected: %v", err)
	}
	if s.Traffic() != 4 {
		t.Errorf("star traffic %d, want 4", s.Traffic())
	}
	if s.MaxDistance(k.Dests) != 2 {
		t.Errorf("max distance %d, want 2", s.MaxDistance(k.Dests))
	}
	bad := Star{Paths: []Path{{Nodes: []topology.NodeID{5, 6}}}}
	if err := bad.Validate(m, k); err == nil {
		t.Error("star missing destination accepted")
	}
}

func TestNextHopPanicsOnSelf(t *testing.T) {
	m := topology.NewMesh2D(3, 3)
	l := labeling.NewMeshBoustrophedon(m)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NextHop(m, l, 4, 4)
}
