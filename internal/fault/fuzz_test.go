package fault

import (
	"errors"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// FuzzFaultMaskCDG fuzzes random fault masks across every registry
// scheme: degraded planning must always yield a plan that validates over
// the masked topology with an acyclic channel dependency graph, or a
// typed ErrPartitioned — never a panic and never an untyped error.
func FuzzFaultMaskCDG(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(0), uint8(0), uint8(0), uint16(0x00F0))
	f.Add(uint64(7), uint8(6), uint8(1), uint8(3), uint8(5), uint16(0x8421))
	f.Add(uint64(99), uint8(12), uint8(2), uint8(8), uint8(15), uint16(0x7FFF))
	m := topology.NewMesh2D(4, 4)
	st, err := routing.NewState(m)
	if err != nil {
		f.Fatal(err)
	}
	schemes := routing.Names()
	f.Fuzz(func(t *testing.T, seed uint64, links, nodes, vcs, src uint8, destBits uint16) {
		mask := NewPlan(m, Spec{
			Links: int(links) % 16,
			Nodes: int(nodes) % 4,
			VCs:   int(vcs) % 8,
			Seed:  seed,
		}).FullMask()
		source := topology.NodeID(src) % 16
		var dests []topology.NodeID
		for v := 0; v < 16; v++ {
			if destBits>>v&1 == 1 && topology.NodeID(v) != source {
				dests = append(dests, topology.NodeID(v))
			}
		}
		k, err := core.NewMulticastSet(m, source, dests)
		if err != nil {
			t.Skip()
		}
		masked := mask.MaskTopology()
		for _, name := range schemes {
			dr, err := NewRouter(name, st, mask)
			if err != nil {
				t.Fatalf("%s: router build: %v", name, err)
			}
			plan, _, err := dr.PlanDegraded(k)
			if err != nil && !errors.Is(err, ErrPartitioned) {
				t.Fatalf("%s: untyped degraded error: %v", name, err)
			}
			if live, ok := liveSubset(m, masked, k); ok && !mask.NodeDead(source) {
				if err := plan.Validate(masked, live); err != nil {
					t.Fatalf("%s: degraded plan invalid: %v", name, err)
				}
			}
			rec := dfr.NewDependencyRecorder()
			for _, p := range plan.Paths {
				rec.AddPath(p)
			}
			for _, tr := range plan.Trees {
				rec.AddTree(tr)
			}
			if cyc := rec.FindCycle(); cyc != nil {
				t.Fatalf("%s: dependency cycle under mask: %v", name, cyc)
			}
		}
	})
}
