package routing

import (
	"sort"
	"strings"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/labeling"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// randomSet draws a k-destination multicast set on t.
func randomSet(t topology.Topology, rng *stats.Rand, k int) core.MulticastSet {
	src := topology.NodeID(rng.Intn(t.Nodes()))
	raw := rng.Sample(t.Nodes(), k, int(src))
	dests := make([]topology.NodeID, len(raw))
	for i, v := range raw {
		dests[i] = topology.NodeID(v)
	}
	return core.MustMulticastSet(t, src, dests)
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	want := []string{
		"adaptive-dual-path", "dual-path", "dual-path-double", "fixed-path",
		"multi-path", "multi-path-double", "naive-tree", "tree", "virtual-channel",
	}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], n)
		}
	}
}

func TestLookupUnknownListsValidNames(t *testing.T) {
	_, err := Lookup("bogus")
	if err == nil {
		t.Fatal("Lookup(bogus) succeeded")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-scheme error %q does not mention %q", err, name)
		}
	}
}

func TestRegisterRejectsBadInfo(t *testing.T) {
	if err := Register(Info{Name: "", Build: func(*State, Options) (Router, error) { return nil, nil }}); err == nil {
		t.Error("Register accepted an empty name")
	}
	if err := Register(Info{Name: "no-builder"}); err == nil {
		t.Error("Register accepted a nil builder")
	}
	if err := Register(Info{Name: "dual-path", Build: func(*State, Options) (Router, error) { return nil, nil }}); err == nil {
		t.Error("Register accepted a duplicate name")
	}
}

func TestSchemesMatchesNames(t *testing.T) {
	infos := Schemes()
	names := Names()
	if len(infos) != len(names) {
		t.Fatalf("Schemes() has %d entries, Names() %d", len(infos), len(names))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Errorf("Schemes()[%d].Name = %q, want %q", i, info.Name, names[i])
		}
		if info.Description == "" {
			t.Errorf("scheme %q has no description", info.Name)
		}
	}
}

func TestSharedStateIdentity(t *testing.T) {
	m := topology.NewMesh2D(5, 4)
	a, err := SharedState(m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SharedState(topology.NewMesh2D(5, 4))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("SharedState returned distinct states for the same topology shape")
	}
	other, err := SharedState(topology.NewMesh2D(4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if a == other {
		t.Error("SharedState shared a state across different topology shapes")
	}
}

func TestStateMatchesCanonicalLabeling(t *testing.T) {
	m := topology.NewMesh2D(6, 5)
	st, err := NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	l := labeling.NewMeshBoustrophedon(m)
	for v := 0; v < m.Nodes(); v++ {
		id := topology.NodeID(v)
		if st.Label(id) != l.Label(id) {
			t.Fatalf("Label(%d) = %d, want %d", v, st.Label(id), l.Label(id))
		}
		if st.At(st.Label(id)) != id {
			t.Fatalf("At(Label(%d)) = %d", v, st.At(st.Label(id)))
		}
		got := st.Neighbors(id)
		want := m.Neighbors(id, nil)
		if len(got) != len(want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", v, got, want)
		}
	}
	if st.Labeling().N() != m.Nodes() {
		t.Fatalf("Labeling().N() = %d", st.Labeling().N())
	}
}

func TestRouterPlanValidatesSet(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	st, err := NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New("dual-path", st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Plan(0, []topology.NodeID{0}); err == nil {
		t.Error("Plan accepted the source as a destination")
	}
	if _, err := r.Plan(0, []topology.NodeID{99}); err == nil {
		t.Error("Plan accepted an out-of-range destination")
	}
	plan, err := r.Plan(0, []topology.NodeID{5, 10, 15})
	if err != nil {
		t.Fatal(err)
	}
	k := core.MustMulticastSet(m, 0, []topology.NodeID{5, 10, 15})
	if err := plan.Validate(m, k); err != nil {
		t.Fatal(err)
	}
	if plan.Messages() != len(plan.Paths) {
		t.Errorf("Messages() = %d, want %d", plan.Messages(), len(plan.Paths))
	}
}

func TestEverySchemePlansValidRoutes(t *testing.T) {
	cases := []struct {
		topo    topology.Topology
		schemes []string
	}{
		{topology.NewMesh2D(8, 8), []string{
			"dual-path", "dual-path-double", "multi-path", "multi-path-double",
			"fixed-path", "tree", "naive-tree", "adaptive-dual-path", "virtual-channel"}},
		{topology.NewHypercube(5), []string{
			"dual-path", "multi-path", "fixed-path", "virtual-channel"}},
		{topology.NewMesh3D(3, 3, 3), []string{"dual-path", "fixed-path"}},
	}
	for _, tc := range cases {
		st, err := NewState(tc.topo)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRand(7)
		for _, name := range tc.schemes {
			r, err := New(name, st)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, tc.topo.Name(), err)
			}
			if r.Scheme() != name {
				t.Errorf("Scheme() = %q, want %q", r.Scheme(), name)
			}
			if r.State() != st {
				t.Errorf("%s: State() is not the construction state", name)
			}
			for rep := 0; rep < 20; rep++ {
				k := randomSet(tc.topo, rng, 1+rng.Intn(10))
				if err := r.PlanSet(k).Validate(tc.topo, k); err != nil {
					t.Fatalf("%s on %s: %v", name, tc.topo.Name(), err)
				}
			}
		}
	}
}

func TestSchemeTopologyMismatch(t *testing.T) {
	st, err := NewState(topology.NewMesh3D(3, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"multi-path", "tree", "naive-tree"} {
		if _, err := New(name, st); err == nil {
			t.Errorf("%s accepted a 3D mesh", name)
		}
	}
}

func TestVirtualChannelOptions(t *testing.T) {
	st, err := NewState(topology.NewMesh2D(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWithOptions("virtual-channel", st, Options{VirtualChannels: -1}); err == nil {
		t.Error("virtual-channel accepted v = -1")
	}
	def, err := New("virtual-channel", st)
	if err != nil {
		t.Fatal(err)
	}
	two, err := NewWithOptions("virtual-channel", st, Options{VirtualChannels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if def.ID() != two.ID() {
		t.Errorf("default ID %q differs from v=2 ID %q", def.ID(), two.ID())
	}
	four, err := NewWithOptions("virtual-channel", st, Options{VirtualChannels: 4})
	if err != nil {
		t.Fatal(err)
	}
	if four.ID() == two.ID() {
		t.Error("v=4 shares the v=2 router identity")
	}
}
