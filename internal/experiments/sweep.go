package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"multicastnet/internal/stats"
)

// SweepPoint is one independent unit of a figure sweep. Run — usually a
// full wormsim simulation — may execute on any worker goroutine and must
// be a pure function of its captured configuration (every dynamic point
// seeds its own RNG from a per-point derived seed, see stats.DeriveSeed).
// Commit folds the result into the figure and always executes on the
// caller's goroutine, in declaration order, after every Run finished.
// That split is the determinism contract: the worker count changes the
// execution schedule but never the figure bytes.
type SweepPoint struct {
	Run    func() any
	Commit func(v any)
}

// seriesPoint adapts the common case — one simulation feeding one
// (x, y) point of one series, skipped when the run reports no data.
func seriesPoint(s *stats.Series, x float64, run func() (float64, bool)) SweepPoint {
	return SweepPoint{
		Run: func() any {
			y, ok := run()
			if !ok {
				return nil
			}
			return y
		},
		Commit: func(v any) {
			if v != nil {
				s.Add(x, v.(float64))
			}
		},
	}
}

// RunSweep executes the points' Run stages over a bounded worker pool of
// the given size, then commits all results sequentially in declaration
// order. workers <= 0 selects GOMAXPROCS; workers == 1 (or a single
// point) runs inline with no goroutines.
func RunSweep(points []SweepPoint, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	results := make([]any, len(points))
	if workers <= 1 {
		for i := range points {
			results[i] = points[i].Run()
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(points) {
						return
					}
					results[i] = points[i].Run()
				}
			}()
		}
		wg.Wait()
	}
	for i := range points {
		points[i].Commit(results[i])
	}
}
