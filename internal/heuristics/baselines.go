package heuristics

import (
	"sort"

	"multicastnet/internal/core"
	"multicastnet/internal/graphx"
	"multicastnet/internal/topology"
)

// MultiUnicastTraffic returns the traffic of implementing the multicast as
// k separate one-to-one messages along deterministic shortest paths — the
// "multiple one-to-one" baseline of Figures 7.1–7.5. Each message over
// each link counts one unit, so shared links are paid once per message.
func MultiUnicastTraffic(t topology.Topology, k core.MulticastSet) int {
	total := 0
	for _, d := range k.Dests {
		total += t.Distance(k.Source, d)
	}
	return total
}

// BroadcastTraffic returns the traffic of delivering the message to every
// node over a network spanning tree — the "broadcast" baseline: N-1 links
// regardless of the destination count.
func BroadcastTraffic(t topology.Topology) int { return t.Nodes() - 1 }

// LEN runs the greedy multicast-tree heuristic of Lan, Esfahanian, and Ni
// [20] on a hypercube, the published baseline of Fig. 7.4. At each node
// the destinations are repeatedly assigned to the dimension that covers
// the most of them: the subset of destinations whose address differs in
// the chosen bit is forwarded to that neighbor. Every destination travels
// a shortest path, so the pattern is a multicast tree.
func LEN(h *topology.Hypercube, k core.MulticastSet) *STResult {
	res := newSTResult()
	destSet := k.DestSet()

	type message struct {
		at    topology.NodeID
		depth int
		dests []topology.NodeID
	}
	queue := []message{{at: k.Source, depth: 0, dests: k.Dests}}
	for len(queue) > 0 {
		msg := queue[0]
		queue = queue[1:]
		u := msg.at
		remaining := make([]topology.NodeID, 0, len(msg.dests))
		for _, d := range msg.dests {
			if d == u {
				if destSet[d] {
					if _, seen := res.Delivered[d]; !seen {
						res.Delivered[d] = msg.depth
					}
				}
				continue
			}
			remaining = append(remaining, d)
		}
		for len(remaining) > 0 {
			// Choose the dimension covering the most remaining
			// destinations (lowest dimension on ties).
			bestDim, bestCount := -1, 0
			for b := 0; b < h.Dim; b++ {
				count := 0
				for _, d := range remaining {
					if (u^d)>>b&1 == 1 {
						count++
					}
				}
				if count > bestCount {
					bestDim, bestCount = b, count
				}
			}
			next := u ^ topology.NodeID(1<<bestDim)
			var sub, rest []topology.NodeID
			for _, d := range remaining {
				if (u^d)>>bestDim&1 == 1 {
					sub = append(sub, d)
				} else {
					rest = append(rest, d)
				}
			}
			res.send(u, next)
			queue = append(queue, message{at: next, depth: msg.depth + 1, dests: sub})
			remaining = rest
		}
	}
	return res
}

// KMB computes a Steiner tree for terminals in g with the classic
// Kou–Markowsky–Berman heuristic [55] (2-approximation): build the metric
// closure over the terminals, take its minimum spanning tree, expand each
// closure edge into a shortest path, take a spanning tree of the expanded
// subgraph, and prune non-terminal leaves. It is the general-graph
// reference against which the topology-aware greedy ST is compared.
// The returned edges are undirected pairs (u < v).
func KMB(g *graphx.Graph, terminals []int) [][2]int {
	if len(terminals) == 0 {
		return nil
	}
	if len(terminals) == 1 {
		return [][2]int{}
	}
	// Metric closure distances from each terminal.
	dist := make(map[int][]int, len(terminals))
	for _, t := range terminals {
		dist[t] = g.BFSDistances(t)
	}
	// Prim's MST over the terminal closure.
	inTree := map[int]bool{terminals[0]: true}
	type cedge struct{ u, v int }
	var closure []cedge
	for len(inTree) < len(terminals) {
		best := cedge{-1, -1}
		bestD := -1
		for t := range inTree {
			for _, s := range terminals {
				if inTree[s] {
					continue
				}
				if d := dist[t][s]; d >= 0 && (bestD < 0 || d < bestD) {
					best, bestD = cedge{t, s}, d
				}
			}
		}
		if best.u < 0 {
			panic("heuristics: KMB terminals not connected")
		}
		closure = append(closure, best)
		inTree[best.v] = true
	}
	// Expand closure edges into shortest paths; collect subgraph edges.
	type uedge [2]int
	sub := make(map[uedge]bool)
	for _, ce := range closure {
		p := g.ShortestPath(ce.u, ce.v)
		for i := 1; i < len(p); i++ {
			a, b := p[i-1], p[i]
			if a > b {
				a, b = b, a
			}
			sub[uedge{a, b}] = true
		}
	}
	// Spanning tree of the expanded subgraph (BFS from a terminal).
	adj := make(map[int][]int)
	for e := range sub {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for _, l := range adj {
		sort.Ints(l)
	}
	parent := map[int]int{terminals[0]: -1}
	queue := []int{terminals[0]}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if _, seen := parent[v]; !seen {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	tree := make(map[uedge]bool)
	deg := make(map[int]int)
	for v, p := range parent {
		if p < 0 {
			continue
		}
		a, b := v, p
		if a > b {
			a, b = b, a
		}
		tree[uedge{a, b}] = true
		deg[a]++
		deg[b]++
	}
	// Prune non-terminal leaves repeatedly.
	isTerminal := make(map[int]bool, len(terminals))
	for _, t := range terminals {
		isTerminal[t] = true
	}
	for {
		removed := false
		for e := range tree {
			for _, end := range []int{e[0], e[1]} {
				if deg[end] == 1 && !isTerminal[end] {
					delete(tree, e)
					deg[e[0]]--
					deg[e[1]]--
					removed = true
					break
				}
			}
			if removed {
				break
			}
		}
		if !removed {
			break
		}
	}
	out := make([][2]int, 0, len(tree))
	for e := range tree {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// TopologyGraph converts a Topology into a graphx.Graph (used to run the
// general-graph baselines on the paper's host graphs).
func TopologyGraph(t topology.Topology) *graphx.Graph {
	g := graphx.NewGraph(t.Nodes())
	var buf []topology.NodeID
	for v := topology.NodeID(0); int(v) < t.Nodes(); v++ {
		buf = t.Neighbors(v, buf[:0])
		for _, w := range buf {
			if v < w {
				g.AddEdge(int(v), int(w))
			}
		}
	}
	return g
}
