package fault

import (
	"errors"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
	"multicastnet/internal/wormsim"
)

// TestPlanDeltas: the delta stream partitions the plan's events by
// activation cycle, in order, with no repairs.
func TestPlanDeltas(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	fp := NewPlan(m, Spec{Links: 5, Nodes: 2, VCs: 3, Horizon: 10_000, Seed: 7})
	deltas := PlanDeltas(fp)
	total := 0
	for i, td := range deltas {
		if len(td.Delta.Repair) != 0 {
			t.Fatalf("delta %d carries repairs", i)
		}
		if i > 0 && td.Cycle <= deltas[i-1].Cycle {
			t.Fatalf("delta cycles not strictly increasing at %d", i)
		}
		for _, e := range td.Delta.Fail {
			if e.Cycle != td.Cycle {
				t.Fatalf("event %v grouped under cycle %d", e, td.Cycle)
			}
		}
		total += len(td.Delta.Fail)
	}
	if total != len(fp.Events()) {
		t.Fatalf("deltas carry %d events, plan has %d", total, len(fp.Events()))
	}
}

func TestSimScheduleRejectsRepairs(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	st, err := routing.NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := NewLiveRouter("dual-path", st, routing.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := Event{Kind: LinkFault, A: 0, B: 1}
	_, err = SimSchedule(lr, []TimedDelta{{Cycle: 10, Delta: Delta{Repair: []Event{e}}}})
	if err == nil {
		t.Fatal("repair delta accepted by the fail-only simulator bridge")
	}
}

// TestSimScheduleMatchesStaticSchedule is the bridge's equivalence
// anchor: a full dynamic wormsim run whose mid-run fault epochs re-plan
// through ONE delta-advanced LiveRouter must be field-for-field identical
// to the same run where every epoch's route is a static degraded Router
// rebuilt from the cumulative mask — the pre-existing manual way of
// wiring wormsim.ScheduledFault.
func TestSimScheduleMatchesStaticSchedule(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	st, err := routing.NewState(m)
	if err != nil {
		t.Fatal(err)
	}
	fp := NewPlan(m, Spec{Links: 4, Nodes: 1, VCs: 2, Horizon: 20_000, Seed: 1990})
	deltas := PlanDeltas(fp)
	if len(deltas) < 2 {
		t.Fatalf("plan yields %d epochs; want a multi-epoch schedule", len(deltas))
	}
	const scheme = "dual-path"

	baseCfg := wormsim.Config{
		Topology:               m,
		MeanInterarrivalMicros: 300,
		AvgDests:               8,
		Seed:                   23,
		WarmupDeliveries:       100,
		BatchSize:              100,
		MinBatches:             5,
		MaxCycles:              60_000,
		Check:                  true,
	}

	runLive := func() wormsim.Result {
		lr, err := NewLiveRouter(scheme, st, routing.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sched, err := SimSchedule(lr, deltas)
		if err != nil {
			t.Fatal(err)
		}
		cfg := baseCfg
		cfg.Route = SimInitialRoute(lr)
		cfg.Faults = sched
		res, err := wormsim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Traffic past the last epoch advanced the router through the
		// whole stream.
		if lr.Epoch() != uint64(len(deltas)) {
			t.Fatalf("live router absorbed %d deltas, schedule has %d", lr.Epoch(), len(deltas))
		}
		return res
	}

	staticRoute := func(mask *Mask) wormsim.RouteFunc {
		dr, err := NewRouter(scheme, st, mask)
		if err != nil {
			t.Fatal(err)
		}
		return func(k core.MulticastSet) wormsim.Injection {
			if mask.NodeDead(k.Source) {
				return wormsim.Injection{}
			}
			plan, _, err := dr.PlanDegraded(k)
			if err != nil && !errors.Is(err, ErrPartitioned) {
				return wormsim.Injection{}
			}
			return wormsim.Injection{Paths: plan.Paths, Trees: plan.Trees}
		}
	}
	runStatic := func() wormsim.Result {
		cfg := baseCfg
		cfg.Route = staticRoute(NewMask(m))
		for _, td := range deltas {
			cfg.Faults = append(cfg.Faults, wormsim.ScheduledFault{
				Cycle: td.Cycle,
				Dead:  deadPredicate(td.Delta.Fail),
				Route: staticRoute(fp.MaskAt(td.Cycle)),
			})
		}
		res, err := wormsim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	live := runLive()
	static := runStatic()
	if live != static {
		t.Fatalf("bridge run diverged from static-schedule run:\nlive:   %+v\nstatic: %+v", live, static)
	}
	if live.WormsKilled == 0 {
		t.Fatalf("schedule did not bite (no worms killed): %+v", live)
	}
	// Determinism: a second bridge run reproduces the first exactly.
	if again := runLive(); again != live {
		t.Fatalf("bridge runs diverged:\nfirst:  %+v\nsecond: %+v", live, again)
	}
}
