// Package sched is the concurrent multicast scheduling service: a
// long-lived layer over internal/routing that ingests streams of
// multicast requests, batches them into admission windows, plans each
// window through the shared PlanCache with a worker pool, and packs the
// window under a congestion+dilation budget (Haeupler/Hershkowitz/Wajc:
// simultaneous multicasts complete in roughly congestion + dilation, so
// the packer bounds exactly that sum). Requests whose plans would push
// the window past the budget are deferred to the next window; a bounded
// deferral count force-admits stragglers so nothing starves.
//
// The steady-state window path — Submit through CloseWindow with a warm
// PlanCache — allocates nothing: requests live in a recycled item arena,
// plan lookups go through FlatProbeBuf's reusable key buffer, and
// per-channel load accounting uses epoch-stamped dense arrays keyed by
// interned channel ids, never maps.
//
// Determinism: for a given submission sequence the admitted stream,
// deferral counts, and PlanCache counters are identical at every worker
// count. Lookups and installs run serially in canonical order (one
// lookup per distinct destination set per window — duplicates share the
// representative's plan); only the pure compute of cache misses fans out
// to the pool.
package sched

import (
	"fmt"
	"sync"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// Config parameterizes a Service.
type Config struct {
	// Router plans requests; its PlanCache (if any) is the dedupe and
	// memoization layer. Required.
	Router *routing.FlatRouter

	// Budget bounds each window's estimated completion: a request is
	// admitted only while (peak channel load + peak dilation) of the
	// window stays within Budget. 0 disables packing — every pending
	// request is admitted in arrival order (the naive FIFO baseline).
	Budget int32

	// MaxDefer force-admits a request that has been deferred this many
	// times, bounding queueing unfairness. 0 defaults to 8.
	MaxDefer int

	// Workers sizes the planning pool for cache misses. 0 or 1 plans
	// inline (the allocation-free path); any value produces identical
	// output.
	Workers int
}

// Admission is one scheduled request of a packed window.
type Admission struct {
	ID   uint64
	Flat *routing.FlatPlan
}

// Stats are cumulative service counters. Deferred counts deferral
// events, so one request deferred three times contributes three.
type Stats struct {
	Submitted    uint64
	Planned      uint64 // cache lookups = distinct sets per window, summed
	Admitted     uint64
	Deferred     uint64
	ForceAdmits  uint64
	Windows      uint64
	PeakLoad     int32 // max per-channel load over all packed windows
	PeakDilation int32
}

// item is one pending request in the arena.
type item struct {
	id        uint64
	src       topology.NodeID
	dests     []topology.NodeID // owned, sorted ascending at Submit
	flat      *routing.FlatPlan
	dilation  int32
	deferrals int
}

// Service batches multicast requests into admission windows. Not safe
// for concurrent use — callers serialize Submit/CloseWindow (the worker
// pool is internal).
type Service struct {
	cfg    Config
	router *routing.FlatRouter
	topo   topology.Topology

	queue []*item // pending, admission order: carried deferrals first
	free  []*item

	// Per-channel load accounting: interned ids into epoch-stamped dense
	// arrays, reset by bumping the epoch rather than clearing.
	chanIDs   map[dfr.Channel]int32
	loadStamp []int64
	loadVal   []int32
	epoch     int64

	keyBuf   []byte
	admitted []Admission
	uniq     []int // scratch: queue indices of distinct unplanned sets
	misses   []int // scratch: uniq positions that missed the cache
	stats    Stats
}

// New returns a service over cfg. The topology is taken from the
// router's state.
func New(cfg Config) *Service {
	if cfg.Router == nil {
		panic("sched: Config.Router is required")
	}
	if cfg.MaxDefer == 0 {
		cfg.MaxDefer = 8
	}
	return &Service{
		cfg:     cfg,
		router:  cfg.Router,
		topo:    cfg.Router.State().Topology(),
		chanIDs: make(map[dfr.Channel]int32),
	}
}

// Stats returns the cumulative counters.
func (s *Service) Stats() Stats { return s.stats }

// Pending returns the number of requests awaiting admission.
func (s *Service) Pending() int { return len(s.queue) }

// Submit enqueues one multicast request under a caller-chosen id. The
// destination list is copied and canonicalized (sorted) into a recycled
// arena slot, so the caller may reuse dests and steady-state submission
// allocates nothing. Validation matches core.NewMulticastSet.
func (s *Service) Submit(id uint64, src topology.NodeID, dests []topology.NodeID) error {
	if src < 0 || int(src) >= s.topo.Nodes() {
		return fmt.Errorf("sched: source %d out of range", src)
	}
	if len(dests) == 0 {
		return fmt.Errorf("sched: request needs at least one destination")
	}
	var it *item
	if n := len(s.free); n > 0 {
		it = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		it = &item{}
	}
	it.id = id
	it.src = src
	it.flat = nil
	it.dilation = 0
	it.deferrals = 0
	it.dests = append(it.dests[:0], dests...)
	// Insertion sort: destination sets are small and sort.Slice allocates.
	for i := 1; i < len(it.dests); i++ {
		for j := i; j > 0 && it.dests[j] < it.dests[j-1]; j-- {
			it.dests[j], it.dests[j-1] = it.dests[j-1], it.dests[j]
		}
	}
	for i, d := range it.dests {
		if d < 0 || int(d) >= s.topo.Nodes() {
			s.recycle(it)
			return fmt.Errorf("sched: destination %d out of range", d)
		}
		if d == src {
			s.recycle(it)
			return fmt.Errorf("sched: source %d listed as destination", d)
		}
		if i > 0 && d == it.dests[i-1] {
			s.recycle(it)
			return fmt.Errorf("sched: duplicate destination %d", d)
		}
	}
	s.queue = append(s.queue, it)
	s.stats.Submitted++
	return nil
}

func (s *Service) recycle(it *item) {
	it.flat = nil
	s.free = append(s.free, it)
}

// set returns the item's canonical multicast set without copying.
func (it *item) set() core.MulticastSet {
	return core.MulticastSet{Source: it.src, Dests: it.dests}
}

// less orders items by canonical set key: source, then destination
// lists lexicographically. Equal keys denote identical requests.
func less(a, b *item) bool {
	if a.src != b.src {
		return a.src < b.src
	}
	for i := 0; i < len(a.dests) && i < len(b.dests); i++ {
		if a.dests[i] != b.dests[i] {
			return a.dests[i] < b.dests[i]
		}
	}
	return len(a.dests) < len(b.dests)
}

func sameSet(a, b *item) bool {
	if a.src != b.src || len(a.dests) != len(b.dests) {
		return false
	}
	for i := range a.dests {
		if a.dests[i] != b.dests[i] {
			return false
		}
	}
	return true
}

// CloseWindow plans every pending request and packs the window: admitted
// requests are returned in arrival order (carried deferrals first) and
// removed from the queue; requests that would push the window past the
// congestion+dilation budget stay queued for the next window. The
// returned slice is reused by the next call.
func (s *Service) CloseWindow() []Admission {
	s.plan()
	s.admitted = s.admitted[:0]
	s.epoch++
	var windowLoad, windowDil int32
	kept := 0
	for _, it := range s.queue {
		admit := s.cfg.Budget <= 0 || len(s.admitted) == 0
		var candLoad int32
		if !admit {
			candLoad = s.applyLoad(it.flat)
			load := candLoad
			if windowLoad > load {
				load = windowLoad
			}
			dil := it.dilation
			if windowDil > dil {
				dil = windowDil
			}
			if load+dil <= s.cfg.Budget {
				admit = true
			} else if it.deferrals >= s.cfg.MaxDefer {
				admit = true
				s.stats.ForceAdmits++
			} else {
				s.revertLoad(it.flat)
			}
		} else if s.cfg.Budget > 0 {
			candLoad = s.applyLoad(it.flat)
		}
		if admit {
			if candLoad > windowLoad {
				windowLoad = candLoad
			}
			if it.dilation > windowDil {
				windowDil = it.dilation
			}
			s.admitted = append(s.admitted, Admission{ID: it.id, Flat: it.flat})
			s.stats.Admitted++
			s.recycle(it)
		} else {
			it.deferrals++
			s.stats.Deferred++
			s.queue[kept] = it
			kept++
		}
	}
	for i := kept; i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = s.queue[:kept]
	s.stats.Windows++
	if windowLoad > s.stats.PeakLoad {
		s.stats.PeakLoad = windowLoad
	}
	if windowDil > s.stats.PeakDilation {
		s.stats.PeakDilation = windowDil
	}
	return s.admitted
}

// plan resolves every unplanned queue item to its FlatPlan, deduplicating
// identical destination sets so each distinct set costs one cache lookup
// per window, and fanning only cache-miss compute out to the worker
// pool. Lookup and install order is canonical regardless of Workers, so
// cache counters and FIFO eviction are deterministic.
func (s *Service) plan() {
	// Collect distinct unplanned sets: sort indices by canonical key
	// (insertion sort on a reused scratch — sort.Slice allocates).
	s.uniq = s.uniq[:0]
	for qi, it := range s.queue {
		if it.flat == nil {
			s.uniq = append(s.uniq, qi)
		}
	}
	if len(s.uniq) == 0 {
		return
	}
	for i := 1; i < len(s.uniq); i++ {
		for j := i; j > 0 && less(s.queue[s.uniq[j]], s.queue[s.uniq[j-1]]); j-- {
			s.uniq[j], s.uniq[j-1] = s.uniq[j-1], s.uniq[j]
		}
	}
	// Probe the cache once per distinct set, in canonical order.
	s.misses = s.misses[:0]
	for i := 0; i < len(s.uniq); i++ {
		it := s.queue[s.uniq[i]]
		if i > 0 && sameSet(it, s.queue[s.uniq[i-1]]) {
			continue
		}
		s.stats.Planned++
		var f *routing.FlatPlan
		var ok bool
		f, s.keyBuf, ok = s.router.FlatProbeBuf(it.set(), s.keyBuf)
		if ok {
			it.flat = f
			it.dilation = dilationOf(f)
		} else {
			s.misses = append(s.misses, i)
		}
	}
	// Compute misses — pure planning, no cache access — on the pool.
	if len(s.misses) > 0 {
		workers := s.cfg.Workers
		if workers > len(s.misses) {
			workers = len(s.misses)
		}
		if workers <= 1 {
			for _, ui := range s.misses {
				it := s.queue[s.uniq[ui]]
				it.flat = s.router.FlatCompute(it.set())
				it.dilation = dilationOf(it.flat)
			}
		} else {
			var wg sync.WaitGroup
			next := make(chan int)
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func() {
					defer wg.Done()
					for ui := range next {
						it := s.queue[s.uniq[ui]]
						it.flat = s.router.FlatCompute(it.set())
						it.dilation = dilationOf(it.flat)
					}
				}()
			}
			for _, ui := range s.misses {
				next <- ui
			}
			close(next)
			wg.Wait()
		}
		// Install in canonical order, keeping FIFO eviction deterministic.
		for _, ui := range s.misses {
			it := s.queue[s.uniq[ui]]
			s.keyBuf = s.router.FlatInstallBuf(it.set(), it.flat, s.keyBuf)
		}
	}
	// Duplicates share the representative's plan.
	for i := 1; i < len(s.uniq); i++ {
		it := s.queue[s.uniq[i]]
		if prev := s.queue[s.uniq[i-1]]; it.flat == nil && sameSet(it, prev) {
			it.flat = prev.flat
			it.dilation = prev.dilation
		}
	}
}

// dilationOf returns the plan's longest channel chain: max path hop
// count and tree level count.
func dilationOf(f *routing.FlatPlan) int32 {
	var d int32
	for p := 0; p < f.Paths(); p++ {
		if hops := f.PathOff[p+1] - f.PathOff[p] - 1; hops > d {
			d = hops
		}
	}
	for t := 0; t < f.Trees(); t++ {
		if levels := f.TreeOff[t+1] - f.TreeOff[t]; levels > d {
			d = levels
		}
	}
	return d
}

// chanID interns a channel into the dense load arrays.
func (s *Service) chanID(c dfr.Channel) int32 {
	if id, ok := s.chanIDs[c]; ok {
		return id
	}
	id := int32(len(s.loadVal))
	s.chanIDs[c] = id
	s.loadVal = append(s.loadVal, 0)
	s.loadStamp = append(s.loadStamp, 0)
	return id
}

// bump adds delta to a channel's load for the current epoch and returns
// the new value.
func (s *Service) bump(id int32, delta int32) int32 {
	if s.loadStamp[id] != s.epoch {
		s.loadStamp[id] = s.epoch
		s.loadVal[id] = 0
	}
	s.loadVal[id] += delta
	return s.loadVal[id]
}

// applyLoad adds one unit of load to every channel the plan traverses
// and returns the maximum resulting per-channel load.
func (s *Service) applyLoad(f *routing.FlatPlan) int32 {
	var max int32
	for p := 0; p < f.Paths(); p++ {
		lo, hi := f.PathOff[p], f.PathOff[p+1]
		clo := lo - int32(p)
		for i := lo + 1; i < hi; i++ {
			id := s.chanID(dfr.Channel{
				From:  topology.NodeID(f.PathNodes[i-1]),
				To:    topology.NodeID(f.PathNodes[i]),
				Class: int(f.PathClass[clo+i-lo-1]),
			})
			if v := s.bump(id, 1); v > max {
				max = v
			}
		}
	}
	for t := 0; t < f.Trees(); t++ {
		llo, lhi := f.TreeOff[t], f.TreeOff[t+1]
		clo, chi := f.TreeLevelOff[llo], f.TreeLevelOff[lhi]
		for c := clo; c < chi; c++ {
			id := s.chanID(dfr.Channel{
				From:  topology.NodeID(f.TreeFrom[c]),
				To:    topology.NodeID(f.TreeTo[c]),
				Class: int(f.TreeClass[c]),
			})
			if v := s.bump(id, 1); v > max {
				max = v
			}
		}
	}
	return max
}

// revertLoad undoes applyLoad for a deferred request.
func (s *Service) revertLoad(f *routing.FlatPlan) {
	for p := 0; p < f.Paths(); p++ {
		lo, hi := f.PathOff[p], f.PathOff[p+1]
		clo := lo - int32(p)
		for i := lo + 1; i < hi; i++ {
			s.bump(s.chanID(dfr.Channel{
				From:  topology.NodeID(f.PathNodes[i-1]),
				To:    topology.NodeID(f.PathNodes[i]),
				Class: int(f.PathClass[clo+i-lo-1]),
			}), -1)
		}
	}
	for t := 0; t < f.Trees(); t++ {
		llo, lhi := f.TreeOff[t], f.TreeOff[t+1]
		clo, chi := f.TreeLevelOff[llo], f.TreeLevelOff[lhi]
		for c := clo; c < chi; c++ {
			s.bump(s.chanID(dfr.Channel{
				From:  topology.NodeID(f.TreeFrom[c]),
				To:    topology.NodeID(f.TreeTo[c]),
				Class: int(f.TreeClass[c]),
			}), -1)
		}
	}
}
