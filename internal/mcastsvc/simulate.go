package mcastsvc

import (
	"fmt"

	"multicastnet/internal/core"
	"multicastnet/internal/topology"
	"multicastnet/internal/wormsim"
)

// Measured is the outcome of executing a primitive on the wormhole
// simulator rather than estimating it: real pipeline timing including any
// self-contention between the protocol's own messages.
type Measured struct {
	// CompletionMicros is the time from protocol start to the last
	// delivery.
	CompletionMicros float64
	// Phases records the completion time of each protocol phase.
	Phases []float64
	// Deadlocked reports a blocked protocol (never happens for the
	// service's deadlock-free schemes; surfaced for honesty).
	Deadlocked bool
}

// phase is one set of concurrently injected messages; a phase starts only
// when the previous one has fully drained (the protocol-level
// synchronization of a barrier or reduction).
type phase struct {
	// one multicast set per concurrently transmitting source
	sets []core.MulticastSet
}

// runPhases executes the phases on a fresh simulated network.
func (s *Service) runPhases(phases []phase, bytes int) (Measured, error) {
	net := wormsim.NewNetwork(s.cfg.Topology)
	flits := bytes / s.cfg.FlitBytes
	if flits < 1 {
		flits = 1
	}
	var out Measured
	var lastProgress int64
	for _, ph := range phases {
		start := net.Cycle()
		for _, k := range ph.sets {
			plan := s.route(k)
			net.InjectMulticast(plan.Paths, plan.Trees, flits)
		}
		for net.ActiveWorms() > 0 {
			if net.Step() {
				lastProgress = net.Cycle()
			} else if net.DetectDeadlock() != nil ||
				net.Cycle()-lastProgress > int64(20*(flits+s.cfg.Topology.Nodes())) {
				out.Deadlocked = true
				out.CompletionMicros = float64(net.Cycle()) * s.flitMicros()
				return out, nil
			}
		}
		out.Phases = append(out.Phases, float64(net.Cycle()-start)*s.flitMicros())
	}
	out.CompletionMicros = float64(net.Cycle()) * s.flitMicros()
	return out, nil
}

// SimulateMulticast executes one multicast on the simulator.
func (s *Service) SimulateMulticast(source topology.NodeID, g Group, bytes int) (Measured, error) {
	if bytes <= 0 {
		bytes = s.cfg.MessageBytes
	}
	dests := make([]topology.NodeID, 0, g.Size())
	for _, m := range g.members {
		if m != source {
			dests = append(dests, m)
		}
	}
	k, err := core.NewMulticastSet(s.cfg.Topology, source, dests)
	if err != nil {
		return Measured{}, err
	}
	return s.runPhases([]phase{{sets: []core.MulticastSet{k}}}, bytes)
}

// SimulateBarrier executes the two-phase barrier protocol on the
// simulator: all members' gather tokens race to the coordinator
// concurrently (phase 1), then the release multicast goes out (phase 2).
// The gather phase exhibits real convergecast contention near the
// coordinator, which the closed-form Barrier estimate ignores.
func (s *Service) SimulateBarrier(coordinator topology.NodeID, g Group, tokenBytes int) (Measured, error) {
	if !g.Contains(coordinator) {
		return Measured{}, fmt.Errorf("mcastsvc: coordinator %d not in group", coordinator)
	}
	if tokenBytes <= 0 {
		tokenBytes = 8
	}
	var gather phase
	for _, m := range g.members {
		if m == coordinator {
			continue
		}
		k, err := core.NewMulticastSet(s.cfg.Topology, m, []topology.NodeID{coordinator})
		if err != nil {
			return Measured{}, err
		}
		gather.sets = append(gather.sets, k)
	}
	dests := make([]topology.NodeID, 0, g.Size()-1)
	for _, m := range g.members {
		if m != coordinator {
			dests = append(dests, m)
		}
	}
	releaseSet, err := core.NewMulticastSet(s.cfg.Topology, coordinator, dests)
	if err != nil {
		return Measured{}, err
	}
	return s.runPhases([]phase{gather, {sets: []core.MulticastSet{releaseSet}}}, tokenBytes)
}

// SimulateAllReduce executes reduce-then-broadcast on the simulator.
func (s *Service) SimulateAllReduce(root topology.NodeID, g Group, bytes int) (Measured, error) {
	if !g.Contains(root) {
		return Measured{}, fmt.Errorf("mcastsvc: root %d not in group", root)
	}
	if bytes <= 0 {
		bytes = s.cfg.MessageBytes
	}
	var reduce phase
	for _, m := range g.members {
		if m == root {
			continue
		}
		k, err := core.NewMulticastSet(s.cfg.Topology, m, []topology.NodeID{root})
		if err != nil {
			return Measured{}, err
		}
		reduce.sets = append(reduce.sets, k)
	}
	dests := make([]topology.NodeID, 0, g.Size()-1)
	for _, m := range g.members {
		if m != root {
			dests = append(dests, m)
		}
	}
	bcastSet, err := core.NewMulticastSet(s.cfg.Topology, root, dests)
	if err != nil {
		return Measured{}, err
	}
	return s.runPhases([]phase{reduce, {sets: []core.MulticastSet{bcastSet}}}, bytes)
}
