package experiments

import (
	"multicastnet/internal/core"
	"multicastnet/internal/heuristics"
	"multicastnet/internal/routing"
	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
	"multicastnet/internal/wormsim"
)

// The Ext* figures exercise the dissertation's Section 8.2 future-work
// directions that this repository implements: virtual-channel network
// partitioning and the unicast/multicast traffic interaction study.

// ExtVirtualChannelsStatic measures additional traffic and worst
// source-to-destination distance of the virtual-channel scheme for
// v = 1, 2, 4 copies on an 8x8 mesh. More copies shorten the worst path
// (each path covers a narrower label interval) at a modest traffic cost
// (each extra path pays its own startup leg).
func ExtVirtualChannelsStatic(opts Options) *stats.Figure {
	m := topology.NewMesh2D(8, 8)
	st := mustState(m)
	fig := &stats.Figure{ID: "Ext V", Title: "Virtual-channel partitioning on an 8x8 mesh (Section 8.2)",
		XLabel: "destinations", YLabel: "additional traffic / max distance"}
	type variant struct {
		name   string
		router routing.Router
	}
	var variants []variant
	for _, v := range []int{1, 2, 4} {
		variants = append(variants, variant{vName(v),
			mustRouter("virtual-channel", st, routing.Options{VirtualChannels: v})})
	}
	traffic := make(map[string]*stats.Series)
	maxDist := make(map[string]*stats.Series)
	for _, vt := range variants {
		traffic[vt.name] = fig.AddSeries(vt.name + " traffic")
		maxDist[vt.name] = fig.AddSeries(vt.name + " max-dist")
	}
	// Same three-stage split as staticSweep: serial workload generation,
	// parallel plan evaluation into disjoint slices, serial fold in rep
	// order — the figure bytes are independent of opts.Parallel.
	reps := opts.reps()
	rng := stats.NewRand(opts.Seed)
	type block struct {
		k    int
		sets []core.MulticastSet
	}
	var blocks []block
	for _, k := range KValuesSmall {
		if k > m.Nodes()-1 {
			continue
		}
		b := block{k: k, sets: make([]core.MulticastSet, reps)}
		for rep := range b.sets {
			b.sets[rep] = randomSet(m, rng, k)
		}
		blocks = append(blocks, b)
	}
	type counts struct{ traffic, maxDist []int }
	raw := make([][]counts, len(blocks))
	var points []SweepPoint
	for bi := range blocks {
		raw[bi] = make([]counts, len(variants))
		sets := blocks[bi].sets
		for vi := range variants {
			c := counts{traffic: make([]int, reps), maxDist: make([]int, reps)}
			raw[bi][vi] = c
			r := variants[vi].router
			for lo := 0; lo < reps; lo += staticChunk {
				lo, hi := lo, min(lo+staticChunk, reps)
				points = append(points, SweepPoint{
					Run: func() any {
						for rep := lo; rep < hi; rep++ {
							p := r.PlanSet(sets[rep])
							c.traffic[rep] = p.Traffic()
							c.maxDist[rep] = p.MaxDistance()
						}
						return nil
					},
					Commit: func(any) {},
				})
			}
		}
	}
	RunSweep(points, opts.Parallel)
	for bi, b := range blocks {
		for vi, vt := range variants {
			tSum, dSum := 0.0, 0.0
			for rep := 0; rep < reps; rep++ {
				tSum += additionalTraffic(raw[bi][vi].traffic[rep], b.k)
				dSum += float64(raw[bi][vi].maxDist[rep])
			}
			traffic[vt.name].Add(float64(b.k), tSum/float64(reps))
			maxDist[vt.name].Add(float64(b.k), dSum/float64(reps))
		}
	}
	return fig
}

// ExtVirtualChannelsDynamic measures latency under load for v = 1, 2, 4
// channel copies (each copy modeled as dedicated link capacity, i.e.
// physically replicated channels; see EXPERIMENTS.md).
func ExtVirtualChannelsDynamic(o DynamicOptions) *stats.Figure {
	m := topology.NewMesh2D(8, 8)
	st, cache := mustState(m), routing.NewPlanCache(0)
	fig := &stats.Figure{ID: "Ext V-dyn", Title: "Virtual-channel partitioning under load (8x8 mesh)",
		XLabel: "load (multicasts/ms/node)", YLabel: "latency (us)"}
	var schemes []namedScheme
	for _, v := range []int{1, 2, 4} {
		schemes = append(schemes, namedScheme{vName(v),
			cachedScheme("virtual-channel", st, cache, routing.Options{VirtualChannels: v})})
	}
	RunSweep(loadSweep(fig, m, schemes, 10, o), o.Parallel)
	return fig
}

func vName(v int) string {
	switch v {
	case 1:
		return "v=1 (dual-path)"
	case 2:
		return "v=2"
	default:
		return "v=4"
	}
}

// ExtUnicastMix runs the Section 8.2 interaction study: a fixed message
// rate whose composition shifts from pure multicast to pure unicast, with
// unicast and multicast latencies measured separately under dual-path
// routing.
func ExtUnicastMix(o DynamicOptions) *stats.Figure {
	m := topology.NewMesh2D(8, 8)
	st, cache := mustState(m), routing.NewPlanCache(0)
	route := cachedScheme("dual-path", st, cache, routing.Options{})
	fig := &stats.Figure{ID: "Ext U", Title: "Unicast/multicast interaction, dual-path on an 8x8 mesh",
		XLabel: "unicast fraction (%)", YLabel: "latency (us)"}
	uni := fig.AddSeries("unicast latency")
	mc := fig.AddSeries("multicast latency")
	all := fig.AddSeries("overall latency")
	var points []SweepPoint
	for i, frac := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
		frac := frac
		seed := pointSeed(o, fig.ID, "mix", i)
		points = append(points, SweepPoint{
			Run: func() any {
				res, err := wormsim.Run(wormsim.Config{
					Topology:               m,
					Route:                  route,
					MeanInterarrivalMicros: 400,
					AvgDests:               10,
					UnicastFraction:        frac,
					Seed:                   seed,
					WarmupDeliveries:       o.Warmup,
					BatchSize:              o.BatchSize,
					MinBatches:             5,
					MaxCycles:              o.MaxCycles,
				})
				if err != nil {
					panic(err)
				}
				if res.Deadlocked || res.Deliveries == 0 {
					return nil
				}
				return res
			},
			Commit: func(v any) {
				if v == nil {
					return
				}
				res := v.(wormsim.Result)
				x := frac * 100
				all.Add(x, res.AvgLatencyMicros)
				if frac > 0 && res.AvgUnicastLatencyMicros > 0 {
					uni.Add(x, res.AvgUnicastLatencyMicros)
				}
				if res.AvgMulticastLatencyMicros > 0 {
					mc.Add(x, res.AvgMulticastLatencyMicros)
				}
			},
		})
	}
	RunSweep(points, o.Parallel)
	return fig
}

// ExtAdaptive compares deterministic dual-path routing against the
// congestion-adaptive variant (Section 8.2: adaptive routing with
// deadlock freedom preserved by the label-monotone window) across loads.
func ExtAdaptive(o DynamicOptions) *stats.Figure {
	m := topology.NewMesh2D(8, 8)
	st, cache := mustState(m), routing.NewPlanCache(0)
	fig := &stats.Figure{ID: "Ext A", Title: "Adaptive vs deterministic dual-path (8x8 mesh)",
		XLabel: "load (multicasts/ms/node)", YLabel: "latency (us)"}
	det := fig.AddSeries("deterministic")
	ada := fig.AddSeries("adaptive")
	detRoute := cachedScheme("dual-path", st, cache, routing.Options{})
	adaRoute := wormsim.LiveRouteFuncOf(
		mustRouter("adaptive-dual-path", st, routing.Options{}).(routing.LiveRouter))
	var points []SweepPoint
	for i, inter := range o.loads() {
		inter := inter
		detSeed := pointSeed(o, fig.ID, "deterministic", i)
		points = append(points, seriesPoint(det, loadAxis(inter), func() (float64, bool) {
			return dynamicPoint(m, detRoute, inter, 10, detSeed, o)
		}))
		adaSeed := pointSeed(o, fig.ID, "adaptive", i)
		points = append(points, seriesPoint(ada, loadAxis(inter), func() (float64, bool) {
			res, err := wormsim.Run(wormsim.Config{
				Topology:               m,
				LiveRoute:              adaRoute,
				MeanInterarrivalMicros: inter,
				AvgDests:               10,
				Seed:                   adaSeed,
				WarmupDeliveries:       o.Warmup,
				BatchSize:              o.BatchSize,
				MinBatches:             5,
				MaxCycles:              o.MaxCycles,
			})
			if err != nil {
				panic(err)
			}
			if res.Deadlocked || res.Deliveries == 0 {
				return 0, false
			}
			return res.AvgLatencyMicros, true
		}))
	}
	RunSweep(points, o.Parallel)
	return fig
}

// ExtDualPath3D exercises dual-path routing on a 3D mesh (the Section
// 4.3 topology) against the multi-unicast baseline.
func ExtDualPath3D(opts Options) *stats.Figure {
	m := topology.NewMesh3D(4, 4, 4)
	st := mustState(m)
	dual := mustRouter("dual-path", st, routing.Options{})
	fixed := mustRouter("fixed-path", st, routing.Options{})
	fig := &stats.Figure{ID: "Ext 3D", Title: "Dual-path routing on a 4x4x4 mesh",
		XLabel: "destinations", YLabel: "additional traffic"}
	staticSweep(fig, m, KValuesSmall, opts, map[string]staticAlgo{
		"one-to-one": func(_ *heuristics.Workspace, k core.MulticastSet) int { return heuristics.MultiUnicastTraffic(m, k) },
		"dual-path":  func(_ *heuristics.Workspace, k core.MulticastSet) int { return dual.PlanSet(k).Traffic() },
		"fixed-path": func(_ *heuristics.Workspace, k core.MulticastSet) int { return fixed.PlanSet(k).Traffic() },
	}, []string{"one-to-one", "dual-path", "fixed-path"})
	return fig
}
