// Package routing is the unified routing-engine layer of the repository:
// a single seam between the Chapter 5/6 route-construction algorithms and
// every consumer that needs routes — the wormhole simulator, the multicast
// service, the experiment figures, and the CLIs.
//
// The engine has three parts:
//
//   - State: immutable per-topology precomputed routing state (the
//     Hamiltonian labeling as dense label/position tables plus adjacency
//     lists), constructed once and safely shared across goroutines.
//   - A named scheme registry (Register / Lookup / Names) covering the
//     deadlock-free schemes of Chapter 6 and the Section 8.2 extensions;
//     each scheme builds a Router over a State.
//   - A bounded, sharded, concurrency-safe plan cache (PlanCache, Cached)
//     keyed on the router identity and the canonicalized multicast set,
//     so parallel sweeps and the multicast service stop re-deriving
//     identical routes.
//
// Concurrency contract: State and Router are immutable after construction
// and safe for unlimited concurrent use. Plans returned by Plan/PlanSet
// are shared (possibly cache-resident) values; callers must treat every
// slice reachable from a Plan as read-only.
package routing

import (
	"fmt"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// Plan is one routed multicast: any mix of path routes and tree routes.
// It is the unit the plan cache stores and the simulator injects.
type Plan struct {
	Paths []dfr.PathRoute
	Trees []dfr.TreeRoute
}

// Traffic returns the total number of channel transmissions.
func (p Plan) Traffic() int {
	total := 0
	for _, pr := range p.Paths {
		total += len(pr.Nodes) - 1
	}
	for _, tr := range p.Trees {
		total += tr.Traffic()
	}
	return total
}

// MaxDistance returns the worst source-to-destination hop count.
func (p Plan) MaxDistance() int {
	maxd := dfr.Star{Paths: p.Paths}.MaxDistance()
	for _, tr := range p.Trees {
		if d := tr.MaxDistance(); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// Messages returns the number of wormhole messages the plan injects.
func (p Plan) Messages() int { return len(p.Paths) + len(p.Trees) }

// Validate checks that the plan delivers every destination of k exactly
// once over channels of t.
func (p Plan) Validate(t topology.Topology, k core.MulticastSet) error {
	delivered := make(map[topology.NodeID]int)
	for i, pr := range p.Paths {
		if len(pr.Nodes) == 0 || pr.Nodes[0] != k.Source {
			return fmt.Errorf("routing: path %d does not start at source", i)
		}
		for j := 1; j < len(pr.Nodes); j++ {
			if !t.Adjacent(pr.Nodes[j-1], pr.Nodes[j]) {
				return fmt.Errorf("routing: path %d uses non-edge (%d,%d)",
					i, pr.Nodes[j-1], pr.Nodes[j])
			}
		}
		onPath := make(map[topology.NodeID]bool, len(pr.Nodes))
		for _, n := range pr.Nodes {
			onPath[n] = true
		}
		for _, d := range pr.Dests {
			if !onPath[d] {
				return fmt.Errorf("routing: path %d does not visit destination %d", i, d)
			}
			delivered[d]++
		}
	}
	for i, tr := range p.Trees {
		if err := tr.Validate(t, core.MulticastSet{Source: k.Source, Dests: tr.Dests}); err != nil {
			return fmt.Errorf("routing: tree %d: %w", i, err)
		}
		for _, d := range tr.Dests {
			delivered[d]++
		}
	}
	for _, d := range k.Dests {
		if delivered[d] != 1 {
			return fmt.Errorf("routing: destination %d delivered %d times", d, delivered[d])
		}
	}
	return nil
}

// Router plans multicast routes for one scheme over one State. Routers
// are immutable and safe for concurrent use.
type Router interface {
	// Scheme returns the registry name the router was built from.
	Scheme() string
	// ID returns the router's full identity — the scheme name plus any
	// option that changes its routes (e.g. the virtual-channel copy
	// count). Equal IDs over equal states produce equal plans; the plan
	// cache namespaces its keys by ID.
	ID() string
	// State returns the precomputed topology state the router plans over.
	State() *State
	// Plan validates (source, dests) as a multicast set and routes it.
	Plan(src topology.NodeID, dests []topology.NodeID) (Plan, error)
	// PlanSet routes an already-validated multicast set. It is the hot
	// path used by the simulator adapters and the plan cache.
	PlanSet(k core.MulticastSet) Plan
}

// LiveRouter is a Router that can additionally route with sight of live
// network state (the Section 8.2 adaptive extension). PlanLive results
// depend on the oracle and must never be cached.
type LiveRouter interface {
	Router
	// PlanLive routes k, preferring channels the oracle reports free.
	PlanLive(k core.MulticastSet, oracle dfr.ChannelOracle) Plan
}

// State is the immutable precomputed routing state of one topology: the
// Hamiltonian labeling flattened into dense label and position tables,
// plus per-node adjacency lists. Construct it once per topology (or use
// SharedState) and share it freely across goroutines.
type State struct {
	topo      topology.Topology
	label     *tableLabeling
	neighbors [][]topology.NodeID
}

// NewState precomputes routing state for t under its canonical
// Hamiltonian labeling (core.LabelingFor). It errors on topologies with
// no known Hamiltonian labeling.
func NewState(t topology.Topology) (*State, error) {
	l, err := core.LabelingFor(t)
	if err != nil {
		return nil, err
	}
	return NewStateWithLabeling(t, l), nil
}

// NewStateWithLabeling precomputes routing state for t under an explicit
// labeling (e.g. the ablation labelings of Fig. 6.10). The labeling is
// flattened into tables, so an expensive Label implementation is paid
// once per topology, not once per hop.
func NewStateWithLabeling(t topology.Topology, l labeling.Labeling) *State {
	n := t.Nodes()
	tl := &tableLabeling{
		labels: make([]int32, n),
		at:     make([]topology.NodeID, n),
	}
	for v := 0; v < n; v++ {
		lab := l.Label(topology.NodeID(v))
		tl.labels[v] = int32(lab)
		tl.at[lab] = topology.NodeID(v)
	}
	neighbors := make([][]topology.NodeID, n)
	for v := 0; v < n; v++ {
		neighbors[v] = t.Neighbors(topology.NodeID(v), nil)
	}
	return &State{topo: t, label: tl, neighbors: neighbors}
}

// Topology returns the topology the state was built over.
func (s *State) Topology() topology.Topology { return s.topo }

// Labeling returns the precomputed (table-backed) Hamiltonian labeling.
func (s *State) Labeling() labeling.Labeling { return s.label }

// Label returns the Hamiltonian-path position of v.
func (s *State) Label(v topology.NodeID) int { return s.label.Label(v) }

// At returns the node at the given Hamiltonian-path position.
func (s *State) At(label int) topology.NodeID { return s.label.At(label) }

// Neighbors returns the precomputed adjacency list of v. Callers must
// not modify the returned slice.
func (s *State) Neighbors(v topology.NodeID) []topology.NodeID { return s.neighbors[v] }

// tableLabeling is a labeling.Labeling backed by dense arrays, the
// precomputed form every State carries.
type tableLabeling struct {
	labels []int32
	at     []topology.NodeID
}

// N implements labeling.Labeling.
func (l *tableLabeling) N() int { return len(l.labels) }

// Label implements labeling.Labeling.
func (l *tableLabeling) Label(v topology.NodeID) int {
	if v < 0 || int(v) >= len(l.labels) {
		panic(fmt.Sprintf("routing: node %d out of range [0,%d)", v, len(l.labels)))
	}
	return int(l.labels[v])
}

// At implements labeling.Labeling.
func (l *tableLabeling) At(label int) topology.NodeID {
	if label < 0 || label >= len(l.at) {
		panic(fmt.Sprintf("routing: label %d out of range [0,%d)", label, len(l.at)))
	}
	return l.at[label]
}
