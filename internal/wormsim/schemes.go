package wormsim

import (
	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// The RouteFuncs below adapt the Chapter 6 routing schemes to the
// simulator. The *Double variants run path-based schemes on the
// double-channel network of Fig. 7.8's comparison: high-channel paths use
// channel copy 0 and low-channel paths copy 1, so the path schemes get
// the same aggregate bandwidth as the four-subnetwork tree scheme.

// classify assigns double-channel classes to the paths of a star. High-
// and low-channel paths already use disjoint channel directions, so the
// second copy is spent where it helps: traffic is spread across the two
// copies by source parity, halving contention per copy. Every copy
// network carries only label-monotone paths, so each remains acyclic and
// the assignment preserves deadlock freedom.
func classify(l labeling.Labeling, s dfr.Star) []dfr.PathRoute {
	out := make([]dfr.PathRoute, len(s.Paths))
	for i, p := range s.Paths {
		out[i] = p
		out[i].Class = (int(s.Source) + i) % 2
	}
	return out
}

// DualPathScheme routes with the dual-path algorithm on single channels.
func DualPathScheme(t topology.Topology, l labeling.Labeling) RouteFunc {
	return func(k core.MulticastSet) Injection {
		return Injection{Paths: dfr.DualPath(t, l, k).Paths}
	}
}

// DualPathDoubleScheme is dual-path on the double-channel network.
func DualPathDoubleScheme(t topology.Topology, l labeling.Labeling) RouteFunc {
	return func(k core.MulticastSet) Injection {
		return Injection{Paths: classify(l, dfr.DualPath(t, l, k))}
	}
}

// MultiPathMeshScheme routes with the mesh multi-path algorithm on
// single channels.
func MultiPathMeshScheme(m *topology.Mesh2D, l labeling.Labeling) RouteFunc {
	return func(k core.MulticastSet) Injection {
		return Injection{Paths: dfr.MultiPathMesh(m, l, k).Paths}
	}
}

// MultiPathMeshDoubleScheme is mesh multi-path on double channels.
func MultiPathMeshDoubleScheme(m *topology.Mesh2D, l labeling.Labeling) RouteFunc {
	return func(k core.MulticastSet) Injection {
		return Injection{Paths: classify(l, dfr.MultiPathMesh(m, l, k))}
	}
}

// MultiPathCubeScheme routes with the hypercube multi-path algorithm.
func MultiPathCubeScheme(h *topology.Hypercube, l labeling.Labeling) RouteFunc {
	return func(k core.MulticastSet) Injection {
		return Injection{Paths: dfr.MultiPathCube(h, l, k).Paths}
	}
}

// FixedPathScheme routes with the fixed-path algorithm on single
// channels.
func FixedPathScheme(t topology.Topology, l labeling.Labeling) RouteFunc {
	return func(k core.MulticastSet) Injection {
		return Injection{Paths: dfr.FixedPath(t, l, k).Paths}
	}
}

// DoubleChannelTreeScheme routes with the deadlock-free double-channel
// X-first tree algorithm (Section 6.2.1).
func DoubleChannelTreeScheme(m *topology.Mesh2D) RouteFunc {
	return func(k core.MulticastSet) Injection {
		return Injection{Trees: dfr.DoubleChannelXFirst(m, k)}
	}
}

// NaiveTreeScheme routes with the single-channel X-first multicast tree —
// the deadlock-PRONE extension of Section 6.1, exposed so the simulator
// can demonstrate the deadlock the chapter opens with.
func NaiveTreeScheme(m *topology.Mesh2D) RouteFunc {
	return func(k core.MulticastSet) Injection {
		return Injection{Trees: dfr.XFirstTrees(m, k)}
	}
}

// AdaptiveDualPathScheme routes with congestion-adaptive dual-path
// routing (the Section 8.2 adaptive extension): hops avoid currently-busy
// channels while staying label-monotone, hence deadlock-free.
func AdaptiveDualPathScheme(t topology.Topology, l labeling.Labeling) LiveRouteFunc {
	return func(k core.MulticastSet, oracle dfr.ChannelOracle) Injection {
		return Injection{Paths: dfr.AdaptiveDualPath(t, l, k, oracle).Paths}
	}
}

// VirtualChannelScheme routes with the Section 8.2 virtual-channel
// extension: 2v label-monotone subnetworks over v channel copies per
// direction.
func VirtualChannelScheme(t topology.Topology, l labeling.Labeling, v int) RouteFunc {
	return func(k core.MulticastSet) Injection {
		return Injection{Paths: dfr.VirtualChannelPath(t, l, k, v).Paths}
	}
}
