package core

import (
	"math/bits"

	"multicastnet/internal/topology"
)

// NodeSet is a bitset over the dense NodeIDs of a topology. It is the
// allocation-free counterpart of the map returned by
// MulticastSet.DestSet: sized once to the topology, reset in O(N/64),
// and reused across calls by the heuristics workspaces.
type NodeSet struct {
	words []uint64
	n     int
}

// Reset sizes the set for node IDs in [0, n) and clears it. The backing
// array is reused when large enough, so steady-state use allocates
// nothing.
func (s *NodeSet) Reset(n int) {
	nw := (n + 63) >> 6
	if cap(s.words) < nw {
		s.words = make([]uint64, nw)
	} else {
		s.words = s.words[:nw]
		clear(s.words)
	}
	s.n = n
}

// Cap returns the node-ID bound the set was last Reset to.
func (s *NodeSet) Cap() int { return s.n }

// Add inserts v. It panics (via bounds check) when v is outside the
// Reset range.
func (s *NodeSet) Add(v topology.NodeID) {
	s.words[uint(v)>>6] |= 1 << (uint(v) & 63)
}

// Remove deletes v.
func (s *NodeSet) Remove(v topology.NodeID) {
	s.words[uint(v)>>6] &^= 1 << (uint(v) & 63)
}

// Has reports membership; out-of-range IDs are simply absent.
func (s *NodeSet) Has(v topology.NodeID) bool {
	if v < 0 || int(v) >= s.n {
		return false
	}
	return s.words[uint(v)>>6]>>(uint(v)&63)&1 == 1
}

// Len returns the number of members.
func (s *NodeSet) Len() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// DestBits fills set with the destination set of k over a topology of n
// nodes — the allocation-free counterpart of DestSet for hot paths.
func (k MulticastSet) DestBits(n int, set *NodeSet) {
	set.Reset(n)
	for _, d := range k.Dests {
		set.Add(d)
	}
}
