package multicastnet_test

import (
	"testing"

	"multicastnet"
)

func TestMeshSystemEndToEnd(t *testing.T) {
	sys, err := multicastnet.NewMeshSystem(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	k, err := sys.Set(27, 4, 18, 35, 49, 62)
	if err != nil {
		t.Fatal(err)
	}

	mp, err := sys.SortedMP(k)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Traffic() <= 0 {
		t.Error("empty sorted MP")
	}
	mc, err := sys.SortedMC(k)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Traffic() <= mp.Traffic() {
		t.Error("cycle should cost more than path")
	}

	st, err := sys.GreedyST(k)
	if err != nil {
		t.Fatal(err)
	}
	xf, err := sys.XFirstMT(k)
	if err != nil {
		t.Fatal(err)
	}
	dg, err := sys.DividedGreedyMT(k)
	if err != nil {
		t.Fatal(err)
	}
	uni := sys.MultiUnicastTraffic(k)
	for name, links := range map[string]int{"greedy ST": st.Links, "X-first": xf.Links, "divided greedy": dg.Links} {
		if links <= 0 || links > uni {
			t.Errorf("%s traffic %d out of range (multi-unicast %d)", name, links, uni)
		}
	}

	dual := sys.DualPath(k)
	multi, err := sys.MultiPath(k)
	if err != nil {
		t.Fatal(err)
	}
	fixed := sys.FixedPath(k)
	if dual.Traffic() <= 0 || multi.Traffic() <= 0 || fixed.Traffic() < dual.Traffic() {
		t.Errorf("path traffic implausible: dual %d multi %d fixed %d",
			dual.Traffic(), multi.Traffic(), fixed.Traffic())
	}
	trees, err := sys.DoubleChannelXFirst(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Error("no subnetwork trees")
	}
	if err := sys.VerifyDeadlockFree(); err != nil {
		t.Error(err)
	}
}

func TestCubeSystemEndToEnd(t *testing.T) {
	sys, err := multicastnet.NewCubeSystem(5)
	if err != nil {
		t.Fatal(err)
	}
	k, err := sys.Set(7, 1, 12, 25, 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SortedMP(k); err != nil {
		t.Error(err)
	}
	if _, err := sys.GreedyST(k); err != nil {
		t.Error(err)
	}
	lenTree, err := sys.LEN(k)
	if err != nil {
		t.Fatal(err)
	}
	if lenTree.Links <= 0 {
		t.Error("empty LEN tree")
	}
	if _, err := sys.MultiPath(k); err != nil {
		t.Error(err)
	}
	// Mesh-only algorithms refuse politely.
	if _, err := sys.XFirstMT(k); err == nil {
		t.Error("X-first should be mesh-only")
	}
	if _, err := sys.DividedGreedyMT(k); err == nil {
		t.Error("divided greedy should be mesh-only")
	}
	if _, err := sys.DoubleChannelXFirst(k); err == nil {
		t.Error("double-channel tree should be mesh-only")
	}
	if _, err := sys.TreeRouteFunc(); err == nil {
		t.Error("tree route func should be mesh-only")
	}
	if err := sys.VerifyDeadlockFree(); err != nil {
		t.Error(err)
	}
}

func TestMeshSystemRefusesLENAndOddOddSortedMP(t *testing.T) {
	sys, err := multicastnet.NewMeshSystem(5, 5) // odd x odd: no Hamilton cycle
	if err != nil {
		t.Fatal(err)
	}
	k, err := sys.Set(0, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SortedMP(k); err == nil {
		t.Error("sorted MP should fail without a Hamilton cycle")
	}
	if _, err := sys.LEN(k); err == nil {
		t.Error("LEN should be cube-only")
	}
	// Everything else still works.
	if sys.DualPath(k).Traffic() <= 0 {
		t.Error("dual-path should work on odd x odd meshes")
	}
	if err := sys.VerifyDeadlockFree(); err != nil {
		t.Error(err)
	}
}

func TestSimulateFacade(t *testing.T) {
	sys, err := multicastnet.NewMeshSystem(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	multiRoute, err := sys.MultiPathRouteFunc()
	if err != nil {
		t.Fatal(err)
	}
	for name, route := range map[string]multicastnet.RouteFunc{
		"dual":  sys.DualPathRouteFunc(),
		"multi": multiRoute,
		"fixed": sys.FixedPathRouteFunc(),
	} {
		res, err := multicastnet.Simulate(multicastnet.SimConfig{
			Topology:               sys.Topology(),
			Route:                  route,
			MeanInterarrivalMicros: 1000,
			AvgDests:               5,
			Seed:                   3,
			WarmupDeliveries:       100,
			BatchSize:              100,
			MinBatches:             3,
			MaxCycles:              200_000,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Deadlocked {
			t.Errorf("%s: deadlocked", name)
		}
		if res.Deliveries == 0 {
			t.Errorf("%s: no deliveries", name)
		}
	}
}

func TestMesh3DSystemEndToEnd(t *testing.T) {
	sys, err := multicastnet.NewMesh3DSystem(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	k, err := sys.Set(0, 13, 26, 8)
	if err != nil {
		t.Fatal(err)
	}
	dual := sys.DualPath(k)
	fixed := sys.FixedPath(k)
	if dual.Traffic() <= 0 || fixed.Traffic() < dual.Traffic() {
		t.Errorf("3D path traffic implausible: dual %d fixed %d", dual.Traffic(), fixed.Traffic())
	}
	if err := sys.VerifyDeadlockFree(); err != nil {
		t.Error(err)
	}
	if _, err := sys.SortedMP(k); err == nil {
		t.Error("sorted MP should be unavailable without a Hamilton cycle")
	}
	st, err := sys.GreedyST(k)
	if err != nil {
		t.Fatal(err)
	}
	if st.Links <= 0 || st.Links > sys.MultiUnicastTraffic(k) {
		t.Errorf("3D greedy ST traffic %d out of range", st.Links)
	}
}

func TestVirtualChannelFacade(t *testing.T) {
	sys, err := multicastnet.NewMeshSystem(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	k, err := sys.Set(0, 9, 18, 27, 36, 45, 54, 63)
	if err != nil {
		t.Fatal(err)
	}
	v1 := sys.VirtualChannelPath(k, 1)
	v4 := sys.VirtualChannelPath(k, 4)
	if v1.Traffic() != sys.DualPath(k).Traffic() {
		t.Error("v=1 should equal dual-path")
	}
	if v4.MaxDistance() > v1.MaxDistance() {
		t.Errorf("more copies should not lengthen the worst path (%d vs %d)",
			v4.MaxDistance(), v1.MaxDistance())
	}
	res, err := multicastnet.Simulate(multicastnet.SimConfig{
		Topology:               sys.Topology(),
		Route:                  sys.VirtualChannelRouteFunc(2),
		MeanInterarrivalMicros: 1000,
		AvgDests:               5,
		Seed:                   9,
		WarmupDeliveries:       100,
		BatchSize:              100,
		MinBatches:             3,
		MaxCycles:              200_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked || res.Deliveries == 0 {
		t.Errorf("virtual-channel simulation failed: %+v", res)
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := multicastnet.NewMulticastSet(multicastnet.NewMesh2D(3, 3), 0, nil); err == nil {
		t.Error("empty destination set accepted")
	}
	sys, err := multicastnet.NewMeshSystem(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Set(0, 0); err == nil {
		t.Error("source-as-destination accepted")
	}
}

func TestMesh3DTreeFacade(t *testing.T) {
	sys, err := multicastnet.NewMesh3DSystem(4, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	k, err := sys.Set(0, 11, 22, 35)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := sys.XYZFirstMT(k)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Links <= 0 || tree.Links > sys.MultiUnicastTraffic(k) {
		t.Errorf("3D tree traffic %d out of range", tree.Links)
	}
	// 2D systems refuse.
	sys2, err := multicastnet.NewMeshSystem(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := sys2.Set(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.XYZFirstMT(k2); err == nil {
		t.Error("XYZ-first should require a 3D mesh")
	}
}
