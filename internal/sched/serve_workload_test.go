package sched

import (
	"testing"

	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
	"multicastnet/internal/workload"
)

func workloadServeConfig(t *testing.T, budget int32, workers, shards int, spec workload.Spec) ServeConfig {
	t.Helper()
	m := topology.NewMesh2D(16, 16)
	src, err := workload.New(m, spec, 31)
	if err != nil {
		t.Fatal(err)
	}
	cache := routing.NewPlanCache(0)
	return ServeConfig{
		Service: Config{
			Router:  newRouter(t, m, cache),
			Budget:  budget,
			Workers: workers,
		},
		Requests:     spec.Requests,
		WindowCycles: 256,
		Flits:        16,
		Shards:       shards,
		MaxCycles:    2_000_000,
		Cache:        cache,
		Workload:     src,
	}
}

// TestServeWorkloadSource: a workload stream replaces the built-in
// pool — every issued request completes and the result reports the
// issued count as the offer.
func TestServeWorkloadSource(t *testing.T) {
	spec := workload.Spec{Model: workload.ModelZipf, Requests: 300, Groups: 16, MeanGap: 30}
	res := Serve(workloadServeConfig(t, 40, 1, 0, spec))
	if res.Requests != spec.Requests {
		t.Fatalf("offered %d requests, want %d", res.Requests, spec.Requests)
	}
	if res.Completed != res.Requests {
		t.Fatalf("completed %d of %d (deadlocked=%v)", res.Completed, res.Requests, res.Deadlocked)
	}
	if res.CacheHitRate <= 0.5 {
		t.Fatalf("cache hit rate %.3f over a 16-group zipf pool, want > 0.5", res.CacheHitRate)
	}
}

// TestServeWorkloadDeterministic: the full result is identical at any
// shard and worker count, for a plain and a bursty stream.
func TestServeWorkloadDeterministic(t *testing.T) {
	for _, arrivals := range workload.Arrivals() {
		spec := workload.Spec{Model: workload.ModelZipf, Arrivals: arrivals,
			Requests: 200, Groups: 16, MeanGap: 20}
		base := Serve(workloadServeConfig(t, 40, 1, 0, spec))
		for _, cfg := range [][2]int{{1, 2}, {4, 0}, {4, 3}} {
			got := Serve(workloadServeConfig(t, 40, cfg[0], cfg[1], spec))
			if got != base {
				t.Fatalf("%s workers=%d shards=%d: result differs\n got %+v\nwant %+v",
					arrivals, cfg[0], cfg[1], got, base)
			}
		}
	}
}

// TestForceAdmitBound: under a permanently hot stream whose every
// window exceeds the budget, no request waits beyond MaxDefer windows —
// the force-admit path drains the deferral queue instead of starving
// it.
func TestForceAdmitBound(t *testing.T) {
	m := topology.NewMesh2D(16, 16)
	cache := routing.NewPlanCache(0)
	const maxDefer = 8
	svc := New(Config{
		Router:   newRouter(t, m, cache),
		Budget:   1, // below any single plan: everything defers until forced
		MaxDefer: maxDefer,
	})

	// One hot multicast repeated: the degenerate limit of a zipf pool.
	hot := []topology.NodeID{17, 200, 93, 140}
	const n = 60
	for i := 0; i < n; i++ {
		if err := svc.Submit(uint64(i), 0, hot); err != nil {
			t.Fatal(err)
		}
	}
	admitWindow := make(map[uint64]int, n)
	window := 0
	for len(admitWindow) < n {
		if window > n {
			t.Fatalf("only %d of %d admitted after %d windows", len(admitWindow), n, window)
		}
		for _, a := range svc.CloseWindow() {
			admitWindow[a.ID] = window
		}
		window++
	}
	// The head of each window always admits; everything else defers
	// until the force-admit bound. No request may wait longer.
	for id, w := range admitWindow {
		if w > maxDefer {
			t.Errorf("request %d admitted in window %d, beyond the MaxDefer=%d bound", id, w, maxDefer)
		}
	}
	st := svc.Stats()
	if st.ForceAdmits == 0 {
		t.Error("no force-admits under a permanently over-budget stream")
	}
	if st.Admitted != n {
		t.Errorf("admitted %d, want %d", st.Admitted, n)
	}
}

// TestForceAdmitUnderServe: the same bound holds end-to-end — a hot
// zipf stream against a tiny budget completes every request with
// force-admits engaged.
func TestForceAdmitUnderServe(t *testing.T) {
	spec := workload.Spec{Model: workload.ModelZipf, Requests: 200, Groups: 4,
		ZipfS: 3, MeanGap: 4} // rank-1 group receives ~87% of requests
	cfg := workloadServeConfig(t, 1, 1, 0, spec)
	res := Serve(cfg)
	if res.Completed != res.Requests {
		t.Fatalf("completed %d of %d (deadlocked=%v)", res.Completed, res.Requests, res.Deadlocked)
	}
	if res.ForceAdmits == 0 {
		t.Error("no force-admits under budget 1")
	}
	if res.Deferrals == 0 {
		t.Error("no deferrals under budget 1")
	}
}
