// Package core defines the multicast communication models of Chapter 3 —
// multicast path (MP), multicast cycle (MC), Steiner tree (ST), multicast
// tree (MT), and multicast star (MS) — together with their validity
// predicates (Definitions 3.1–3.5), the traffic and distance metrics of
// the performance study, and the partial-order-preserving routing function
// R of Sections 6.2.2/6.3.
package core

import (
	"fmt"
	"sort"

	"multicastnet/internal/topology"
)

// MulticastSet is the set K = {u0, u1, ..., uk} of Chapter 3: a source
// node and k >= 1 destination nodes.
type MulticastSet struct {
	Source topology.NodeID
	Dests  []topology.NodeID
}

// NewMulticastSet validates and returns a multicast set over t. The source
// must not appear among the destinations and destinations must be
// distinct.
func NewMulticastSet(t topology.Topology, source topology.NodeID, dests []topology.NodeID) (MulticastSet, error) {
	if source < 0 || int(source) >= t.Nodes() {
		return MulticastSet{}, fmt.Errorf("core: source %d out of range", source)
	}
	if len(dests) == 0 {
		return MulticastSet{}, fmt.Errorf("core: multicast set needs at least one destination")
	}
	seen := make(map[topology.NodeID]bool, len(dests)+1)
	seen[source] = true
	for _, d := range dests {
		if d < 0 || int(d) >= t.Nodes() {
			return MulticastSet{}, fmt.Errorf("core: destination %d out of range", d)
		}
		if d == source {
			return MulticastSet{}, fmt.Errorf("core: source %d listed as destination", d)
		}
		if seen[d] {
			return MulticastSet{}, fmt.Errorf("core: duplicate destination %d", d)
		}
		seen[d] = true
	}
	out := MulticastSet{Source: source, Dests: make([]topology.NodeID, len(dests))}
	copy(out.Dests, dests)
	return out, nil
}

// MustMulticastSet is NewMulticastSet that panics on error; for tests and
// examples with known-good inputs.
func MustMulticastSet(t topology.Topology, source topology.NodeID, dests []topology.NodeID) MulticastSet {
	k, err := NewMulticastSet(t, source, dests)
	if err != nil {
		panic(err)
	}
	return k
}

// K returns the number of destinations.
func (s MulticastSet) K() int { return len(s.Dests) }

// DestSet returns the destinations as a membership map.
func (s MulticastSet) DestSet() map[topology.NodeID]bool {
	m := make(map[topology.NodeID]bool, len(s.Dests))
	for _, d := range s.Dests {
		m[d] = true
	}
	return m
}

// Path is a multicast path (Definition 3.1): a node visiting sequence
// (v_1, ..., v_n) with v_1 = u0 along edges of the host graph, all nodes
// distinct, covering every destination.
type Path struct {
	Nodes []topology.NodeID
}

// Traffic returns the number of channels the path uses.
func (p Path) Traffic() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

// DistanceTo returns the number of hops from the source to the first
// occurrence of v along the path, or -1 when v is not on the path. Under
// path-based wormhole multicast this is the channel count traversed
// before v's router sees the header.
func (p Path) DistanceTo(v topology.NodeID) int {
	for i, n := range p.Nodes {
		if n == v {
			return i
		}
	}
	return -1
}

// Validate checks Definition 3.1 for the multicast set k, requiring
// distinct nodes (a path, not a walk) when strict is true. Heuristic
// path routing over a fixed Hamilton cycle may legitimately revisit nodes
// (the route is a walk in G); model validation for the optimization
// problems uses strict mode.
func (p Path) Validate(t topology.Topology, k MulticastSet, strict bool) error {
	if len(p.Nodes) == 0 || p.Nodes[0] != k.Source {
		return fmt.Errorf("core: path must start at source %d", k.Source)
	}
	seen := make(map[topology.NodeID]bool, len(p.Nodes))
	for i, v := range p.Nodes {
		if v < 0 || int(v) >= t.Nodes() {
			return fmt.Errorf("core: path node %d out of range", v)
		}
		if i > 0 && !t.Adjacent(p.Nodes[i-1], v) {
			return fmt.Errorf("core: path nodes %d,%d not adjacent", p.Nodes[i-1], v)
		}
		if strict && seen[v] {
			return fmt.Errorf("core: path revisits node %d", v)
		}
		seen[v] = true
	}
	for _, d := range k.Dests {
		if !seen[d] {
			return fmt.Errorf("core: path misses destination %d", d)
		}
	}
	return nil
}

// Cycle is a multicast cycle (Definition 3.2): a multicast path that
// additionally returns to its first node, so the source receives its own
// message as a collective acknowledgement.
type Cycle struct {
	Nodes []topology.NodeID // v_1 ... v_n; the closing edge (v_n, v_1) is implicit
}

// Traffic returns the number of channels the cycle uses, including the
// closing edge.
func (c Cycle) Traffic() int {
	if len(c.Nodes) < 2 {
		return 0
	}
	return len(c.Nodes)
}

// Validate checks Definition 3.2 (strict mode as for Path).
func (c Cycle) Validate(t topology.Topology, k MulticastSet, strict bool) error {
	if err := (Path{Nodes: c.Nodes}).Validate(t, k, strict); err != nil {
		return err
	}
	if len(c.Nodes) < 2 {
		return fmt.Errorf("core: cycle too short")
	}
	if !t.Adjacent(c.Nodes[len(c.Nodes)-1], c.Nodes[0]) {
		return fmt.Errorf("core: cycle does not close: %d,%d not adjacent",
			c.Nodes[len(c.Nodes)-1], c.Nodes[0])
	}
	return nil
}

// Tree is a rooted multicast tree: the ST and MT models, and also the
// delivery structure produced by tree-like wormhole routing. Children
// lists are kept sorted for deterministic traversal.
type Tree struct {
	Root     topology.NodeID
	children map[topology.NodeID][]topology.NodeID
	parent   map[topology.NodeID]topology.NodeID
}

// NewTree returns a tree containing only the root.
func NewTree(root topology.NodeID) *Tree {
	return &Tree{
		Root:     root,
		children: make(map[topology.NodeID][]topology.NodeID),
		parent:   make(map[topology.NodeID]topology.NodeID),
	}
}

// AddEdge attaches child under parent. The parent must already be in the
// tree and the child must not be.
func (tr *Tree) AddEdge(parent, child topology.NodeID) {
	if !tr.Contains(parent) {
		panic(fmt.Sprintf("core: tree edge from absent parent %d", parent))
	}
	if tr.Contains(child) {
		panic(fmt.Sprintf("core: tree already contains %d", child))
	}
	tr.children[parent] = append(tr.children[parent], child)
	sort.Slice(tr.children[parent], func(i, j int) bool {
		return tr.children[parent][i] < tr.children[parent][j]
	})
	tr.parent[child] = parent
}

// Contains reports whether v is a node of the tree.
func (tr *Tree) Contains(v topology.NodeID) bool {
	if v == tr.Root {
		return true
	}
	_, ok := tr.parent[v]
	return ok
}

// Children returns the (sorted) children of v.
func (tr *Tree) Children(v topology.NodeID) []topology.NodeID { return tr.children[v] }

// Parent returns the parent of v and whether v has one (the root and
// absent nodes do not).
func (tr *Tree) Parent(v topology.NodeID) (topology.NodeID, bool) {
	p, ok := tr.parent[v]
	return p, ok
}

// Nodes returns all tree nodes in sorted order.
func (tr *Tree) Nodes() []topology.NodeID {
	out := []topology.NodeID{tr.Root}
	for v := range tr.parent {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the number of nodes.
func (tr *Tree) Size() int { return len(tr.parent) + 1 }

// Traffic returns the number of channels (edges) the tree uses.
func (tr *Tree) Traffic() int { return len(tr.parent) }

// Depth returns the hop distance from the root to v, or -1 when v is not
// in the tree.
func (tr *Tree) Depth(v topology.NodeID) int {
	if !tr.Contains(v) {
		return -1
	}
	d := 0
	for v != tr.Root {
		v = tr.parent[v]
		d++
	}
	return d
}

// MaxDepth returns the maximum root-to-node distance.
func (tr *Tree) MaxDepth() int {
	maxd := 0
	for v := range tr.parent {
		if d := tr.Depth(v); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// Walk visits every node in preorder (parent before children).
func (tr *Tree) Walk(fn func(v topology.NodeID)) {
	var rec func(v topology.NodeID)
	rec = func(v topology.NodeID) {
		fn(v)
		for _, c := range tr.children[v] {
			rec(c)
		}
	}
	rec(tr.Root)
}

// Validate checks that the tree is rooted at the multicast source, all
// tree edges are host-graph edges, and every destination is covered
// (Definition 3.3, the ST model).
func (tr *Tree) Validate(t topology.Topology, k MulticastSet) error {
	if tr.Root != k.Source {
		return fmt.Errorf("core: tree rooted at %d, source is %d", tr.Root, k.Source)
	}
	for child, parent := range tr.parent {
		if !t.Adjacent(parent, child) {
			return fmt.Errorf("core: tree edge (%d,%d) is not a host edge", parent, child)
		}
	}
	for _, d := range k.Dests {
		if !tr.Contains(d) {
			return fmt.Errorf("core: tree misses destination %d", d)
		}
	}
	return nil
}

// ValidateMT additionally checks condition (b) of Definition 3.4: the
// tree distance from the source to each destination equals the host-graph
// distance (the MT model minimizes time first).
func (tr *Tree) ValidateMT(t topology.Topology, k MulticastSet) error {
	if err := tr.Validate(t, k); err != nil {
		return err
	}
	for _, d := range k.Dests {
		if got, want := tr.Depth(d), t.Distance(k.Source, d); got != want {
			return fmt.Errorf("core: destination %d at tree depth %d, graph distance %d", d, got, want)
		}
	}
	return nil
}

// Star is a multicast star (Definition 3.5): a collection of multicast
// paths, each starting at the source, whose destination subsets D_i
// partition the destination set.
type Star struct {
	Paths []Path
}

// Traffic returns the total channel count over all paths.
func (s Star) Traffic() int {
	total := 0
	for _, p := range s.Paths {
		total += p.Traffic()
	}
	return total
}

// MaxDistance returns the largest source-to-destination hop count over
// the given destinations, measuring each at the path that delivers it.
func (s Star) MaxDistance(dests []topology.NodeID) int {
	maxd := 0
	for _, d := range dests {
		best := -1
		for _, p := range s.Paths {
			if h := p.DistanceTo(d); h >= 0 && (best < 0 || h < best) {
				best = h
			}
		}
		if best > maxd {
			maxd = best
		}
	}
	return maxd
}

// Validate checks Definition 3.5: every path starts at the source and
// walks host edges, and the destination set is covered. Disjointness of
// the D_i is inherent (each destination is delivered by the path that
// carries it in its header); covering every destination exactly once is
// the responsibility of the routing algorithm's message preparation and is
// asserted separately by the algorithms' tests.
func (s Star) Validate(t topology.Topology, k MulticastSet) error {
	if len(s.Paths) == 0 {
		return fmt.Errorf("core: star has no paths")
	}
	covered := make(map[topology.NodeID]bool)
	for i, p := range s.Paths {
		if len(p.Nodes) == 0 || p.Nodes[0] != k.Source {
			return fmt.Errorf("core: star path %d does not start at source", i)
		}
		for j := 1; j < len(p.Nodes); j++ {
			if !t.Adjacent(p.Nodes[j-1], p.Nodes[j]) {
				return fmt.Errorf("core: star path %d uses non-edge (%d,%d)",
					i, p.Nodes[j-1], p.Nodes[j])
			}
		}
		for _, v := range p.Nodes {
			covered[v] = true
		}
	}
	for _, d := range k.Dests {
		if !covered[d] {
			return fmt.Errorf("core: star misses destination %d", d)
		}
	}
	return nil
}
