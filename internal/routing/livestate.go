package routing

import (
	"multicastnet/internal/topology"
)

// LiveState is the incremental counterpart of State: a versioned routing
// state that absorbs fault/repair deltas in O(|delta|) instead of a full
// per-topology rebuild. It keeps the healthy baseline State immutable and
// maintains a second State whose topology is a topology.LiveMasked and
// whose per-node adjacency rows are patched in place as deltas arrive,
// all behind an epoch counter.
//
// Routers built over State() observe every applied delta on their next
// plan: the scheme builders capture the State and read adjacency through
// it at plan time, so one router survives arbitrarily many epochs without
// rebuild. Plans produced at any epoch are byte-identical to plans over a
// freshly built NewStateWithLabeling(NewMasked(...), labeling) with the
// same dead sets (the churn-equivalence tests in internal/fault pin
// this).
//
// Concurrency contract (the epoch protocol): Apply is a write and must be
// externally synchronized against reads — apply deltas between planning
// rounds, never during one. Within an epoch the state is safe for
// unlimited concurrent readers, like State.
type LiveState struct {
	baseline *State
	live     *topology.LiveMasked
	cur      *State
}

// NewLiveState builds the live state over a healthy baseline. The
// baseline keeps its immutability guarantee; the live state starts at
// epoch 0 with every node and link healthy, planning identically to the
// baseline.
func NewLiveState(baseline *State) *LiveState {
	live := topology.NewLiveMasked(baseline.topo)
	n := baseline.topo.Nodes()
	neighbors := make([][]topology.NodeID, n)
	for v := 0; v < n; v++ {
		neighbors[v] = live.NeighborsShared(topology.NodeID(v))
	}
	return &LiveState{
		baseline: baseline,
		live:     live,
		cur:      &State{topo: live, label: baseline.label, neighbors: neighbors},
	}
}

// Apply advances the state by one physical-graph delta, patching the
// masked adjacency rows of exactly the affected nodes. It returns the
// nodes whose rows changed.
func (ls *LiveState) Apply(d topology.GraphDelta) []topology.NodeID {
	changed := ls.live.Apply(d)
	for _, v := range changed {
		ls.cur.neighbors[v] = ls.live.NeighborsShared(v)
	}
	return changed
}

// State returns the live routing state. The pointer is stable across
// epochs: build routers over it once and they follow every delta.
func (ls *LiveState) State() *State { return ls.cur }

// Baseline returns the immutable healthy state the live state was built
// from.
func (ls *LiveState) Baseline() *State { return ls.baseline }

// Live returns the underlying live masked topology view.
func (ls *LiveState) Live() *topology.LiveMasked { return ls.live }

// Epoch returns the number of deltas applied so far.
func (ls *LiveState) Epoch() uint64 { return ls.live.Epoch() }
