module multicastnet

go 1.22
