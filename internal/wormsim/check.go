package wormsim

import "fmt"

// CheckInvariants audits the full simulator state and returns the first
// violation found, or nil. It is the safety net behind the -simcheck
// flag and the determinism tests: any bookkeeping drift between worms,
// channels, queues, and multicast accounting is caught at the cycle it
// happens instead of surfacing as silently wrong statistics.
//
// Invariants checked:
//
//   - accounting: the live-worm count matches inFlight;
//   - flit conservation: every worm's released/head/progress counters
//     are mutually consistent and within route bounds, so no flit is
//     created or destroyed by the pipeline arithmetic;
//   - channel ownership: every held channel is held by exactly the worm
//     whose state says it holds it (no double-occupancy, no orphans),
//     and failed channels are never owned;
//   - queue consistency: wait queues contain only live worms, at most
//     once each;
//   - delivery conservation: per-worm undelivered counts match the
//     delivery flags, and each multicast's remaining+lost+delivered
//     partitions its destination set.
func (n *Network) CheckInvariants() error {
	live := 0
	owners := make(map[int32]*worm)
	type mcastSeen struct {
		undeliv int
		flagged int
	}
	mcasts := make(map[*mcastState]*mcastSeen)
	for _, w := range n.worms {
		if w.done {
			continue
		}
		live++
		holds := func(id int32) error {
			if prev, ok := owners[id]; ok {
				return fmt.Errorf("wormsim: channel %d held by worms %d and %d", id, prev.id, w.id)
			}
			owners[id] = w
			st := &n.chans[id]
			if st.dead {
				return fmt.Errorf("wormsim: worm %d holds failed channel %d", w.id, id)
			}
			if st.owner != w {
				return fmt.Errorf("wormsim: worm %d believes it holds channel %d owned by someone else", w.id, id)
			}
			return nil
		}
		if w.kind == pathWorm {
			if w.released < 0 || w.released > w.headIdx || w.headIdx > len(w.chans) {
				return fmt.Errorf("wormsim: worm %d counters out of order: released %d head %d len %d",
					w.id, w.released, w.headIdx, len(w.chans))
			}
			if w.progress < w.headIdx || w.progress > len(w.chans)+w.length {
				return fmt.Errorf("wormsim: worm %d flit miscount: progress %d head %d len %d length %d",
					w.id, w.progress, w.headIdx, len(w.chans), w.length)
			}
			for i := w.released; i < w.headIdx; i++ {
				if err := holds(w.chans[i]); err != nil {
					return err
				}
			}
		} else {
			if w.released < 0 || w.released > w.headIdx || w.headIdx > len(w.levels) {
				return fmt.Errorf("wormsim: tree worm %d counters out of order: released %d head %d levels %d",
					w.id, w.released, w.headIdx, len(w.levels))
			}
			if w.progress < w.headIdx || w.progress > len(w.levels)+w.length {
				return fmt.Errorf("wormsim: tree worm %d flit miscount: progress %d head %d levels %d length %d",
					w.id, w.progress, w.headIdx, len(w.levels), w.length)
			}
			for li := w.released; li < w.headIdx; li++ {
				for _, id := range w.levels[li].channels {
					if err := holds(id); err != nil {
						return err
					}
				}
			}
			if w.headIdx < len(w.levels) {
				l := &w.levels[w.headIdx]
				for i, id := range l.channels {
					if l.taken[i] {
						if err := holds(id); err != nil {
							return err
						}
					}
				}
			}
		}
		undeliv := 0
		for _, d := range w.deliveries {
			if !d.done {
				undeliv++
			}
		}
		if undeliv != w.undeliv {
			return fmt.Errorf("wormsim: worm %d undelivered count %d but %d deliveries pending",
				w.id, w.undeliv, undeliv)
		}
		ms := mcasts[w.mcast]
		if ms == nil {
			ms = &mcastSeen{}
			mcasts[w.mcast] = ms
		}
		ms.undeliv += undeliv
	}
	if live != n.inFlight {
		return fmt.Errorf("wormsim: %d live worms but inFlight = %d", live, n.inFlight)
	}
	for id := range n.chans {
		st := &n.chans[id]
		if st.owner != nil {
			if st.owner.done {
				return fmt.Errorf("wormsim: channel %d owned by retired worm %d", id, st.owner.id)
			}
			if owners[int32(id)] != st.owner {
				return fmt.Errorf("wormsim: channel %d owner worm %d does not account for holding it",
					id, st.owner.id)
			}
		}
		seen := make(map[*worm]bool, len(st.waiters()))
		for _, q := range st.waiters() {
			if q.done {
				return fmt.Errorf("wormsim: retired worm %d still queued on channel %d", q.id, id)
			}
			if seen[q] {
				return fmt.Errorf("wormsim: worm %d queued twice on channel %d", q.id, id)
			}
			seen[q] = true
		}
	}
	for mc, ms := range mcasts {
		if mc.remaining != ms.undeliv {
			return fmt.Errorf("wormsim: multicast remaining %d but live worms owe %d deliveries",
				mc.remaining, ms.undeliv)
		}
		if mc.remaining < 0 || mc.lost < 0 || mc.remaining+mc.lost > mc.size {
			return fmt.Errorf("wormsim: multicast accounting broken: size %d remaining %d lost %d",
				mc.size, mc.remaining, mc.lost)
		}
	}
	return nil
}
