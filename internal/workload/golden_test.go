package workload

import (
	"testing"

	"multicastnet/internal/topology"
)

// TestGoldenStreams pins the first requests of every model for one
// fixed (topology, spec, seed). Streams are part of the repo's
// determinism contract — committed figures replay them — so any change
// to generation order is a breaking change and must show up here.
func TestGoldenStreams(t *testing.T) {
	topo := topology.NewMesh2D(8, 8)
	cases := []struct {
		name string
		spec Spec
		want []Request
	}{
		{"uniform", Spec{Model: ModelUniform, Requests: 5, Groups: 8}, []Request{
			{At: 0, Src: 40, Dests: []topology.NodeID{0, 22, 49}},
			{At: 0, Src: 19, Dests: []topology.NodeID{41, 45, 4, 3, 51, 53}},
			{At: 1, Src: 45, Dests: []topology.NodeID{25, 22, 58, 21, 44, 18}},
			{At: 7, Src: 46, Dests: []topology.NodeID{1, 47, 29, 30, 50}},
			{At: 9, Src: 63, Dests: []topology.NodeID{7, 5, 18, 26}},
		}},
		{"zipf", Spec{Model: ModelZipf, Requests: 5, Groups: 8}, []Request{
			{At: 0, Src: 63, Dests: []topology.NodeID{7, 5, 18, 26}},
			{At: 0, Src: 26, Dests: []topology.NodeID{42, 7, 50}},
			{At: 1, Src: 40, Dests: []topology.NodeID{0, 22, 49}},
			{At: 7, Src: 40, Dests: []topology.NodeID{0, 22, 49}},
			{At: 9, Src: 46, Dests: []topology.NodeID{1, 47, 29, 30, 50}},
		}},
		{"hotspot", Spec{Model: ModelHotspot, Requests: 5}, []Request{
			{At: 0, Src: 31, Dests: []topology.NodeID{3, 54}},
			{At: 0, Src: 37, Dests: []topology.NodeID{13, 1, 0}},
			{At: 0, Src: 1, Dests: []topology.NodeID{2, 3, 56}},
			{At: 3, Src: 17, Dests: []topology.NodeID{1, 2, 13, 3, 26, 10}},
			{At: 4, Src: 33, Dests: []topology.NodeID{3}},
		}},
		{"transpose", Spec{Model: ModelTranspose, Requests: 5}, []Request{
			{At: 0, Src: 31, Dests: []topology.NodeID{59, 58}},
			{At: 2, Src: 27, Dests: []topology.NodeID{26, 28}},
			{At: 7, Src: 9, Dests: []topology.NodeID{8}},
			{At: 10, Src: 45, Dests: []topology.NodeID{44, 46}},
			{At: 14, Src: 29, Dests: []topology.NodeID{43, 42, 44, 35, 51}},
		}},
		{"collective", Spec{Model: ModelCollective, Requests: 5, Groups: 2, GroupSize: 3}, []Request{
			{At: 0, Src: 18, Dests: []topology.NodeID{5}},
			{At: 0, Src: 26, Dests: []topology.NodeID{5}},
			{At: 0, Src: 18, Dests: []topology.NodeID{5}},
			{At: 0, Src: 26, Dests: []topology.NodeID{5}},
			{At: 64, Src: 5, Dests: []topology.NodeID{18, 26}},
		}},
		{"bursty", Spec{Model: ModelZipf, Arrivals: ArrivalsOnOff, Requests: 5, Groups: 8}, []Request{
			{At: 4, Src: 40, Dests: []topology.NodeID{0, 22, 49}},
			{At: 5, Src: 45, Dests: []topology.NodeID{25, 22, 58, 21, 44, 18}},
			{At: 5, Src: 63, Dests: []topology.NodeID{7, 5, 18, 26}},
			{At: 5, Src: 46, Dests: []topology.NodeID{1, 47, 29, 30, 50}},
			{At: 5, Src: 40, Dests: []topology.NodeID{0, 22, 49}},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := collect(t, topo, c.spec, 42, len(c.want)+1)
			if len(got) != len(c.want) {
				t.Fatalf("got %d requests, want %d", len(got), len(c.want))
			}
			for i := range got {
				if !requestsEqual(got[i], c.want[i]) {
					t.Errorf("request %d: got %v, want %v", i, got[i], c.want[i])
				}
			}
		})
	}
}
