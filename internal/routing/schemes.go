package routing

import (
	"fmt"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/topology"
)

// This file registers the Chapter 6 deadlock-free schemes and the
// Section 8.2 extensions. Every builder captures the precomputed State,
// so per-plan work is pure route construction.

// router is the common Router implementation: a name, an identity, the
// state, and a plan function. live is non-nil for adaptive schemes.
type router struct {
	scheme string
	id     string
	st     *State
	plan   func(k core.MulticastSet) Plan
	live   func(k core.MulticastSet, oracle dfr.ChannelOracle) Plan
}

// Scheme implements Router.
func (r *router) Scheme() string { return r.scheme }

// ID implements Router.
func (r *router) ID() string { return r.id }

// State implements Router.
func (r *router) State() *State { return r.st }

// Plan implements Router.
func (r *router) Plan(src topology.NodeID, dests []topology.NodeID) (Plan, error) {
	k, err := core.NewMulticastSet(r.st.topo, src, dests)
	if err != nil {
		return Plan{}, err
	}
	return r.plan(k), nil
}

// PlanSet implements Router.
func (r *router) PlanSet(k core.MulticastSet) Plan { return r.plan(k) }

// liveRouter adds PlanLive; only adaptive schemes build it.
type liveRouter struct {
	router
}

// PlanLive implements LiveRouter.
func (r *liveRouter) PlanLive(k core.MulticastSet, oracle dfr.ChannelOracle) Plan {
	return r.live(k, oracle)
}

// classifyDouble assigns double-channel classes to the paths of a star
// for the Fig. 7.8 comparison: traffic is spread across the two channel
// copies by source parity, halving contention per copy. Every copy
// network carries only label-monotone paths, so each remains acyclic and
// the assignment preserves deadlock freedom.
func classifyDouble(s dfr.Star) []dfr.PathRoute {
	out := make([]dfr.PathRoute, len(s.Paths))
	for i, p := range s.Paths {
		out[i] = p
		out[i].Class = (int(s.Source) + i) % 2
	}
	return out
}

func init() {
	MustRegister(Info{
		Name:         "dual-path",
		Description:  "dual-path routing: at most two label-monotone paths (Section 6.2.2)",
		DeadlockFree: true,
		Build: func(s *State, _ Options) (Router, error) {
			return &router{scheme: "dual-path", id: "dual-path", st: s,
				plan: func(k core.MulticastSet) Plan {
					return Plan{Paths: dfr.DualPath(s.topo, s.label, k).Paths}
				}}, nil
		},
	})
	MustRegister(Info{
		Name:         "dual-path-double",
		Description:  "dual-path on the double-channel network (Fig. 7.8 comparison)",
		DeadlockFree: true,
		Build: func(s *State, _ Options) (Router, error) {
			return &router{scheme: "dual-path-double", id: "dual-path-double", st: s,
				plan: func(k core.MulticastSet) Plan {
					return Plan{Paths: classifyDouble(dfr.DualPath(s.topo, s.label, k))}
				}}, nil
		},
	})
	MustRegister(Info{
		Name:         "multi-path",
		Description:  "multi-path routing: up to degree-many label-monotone paths (Figs. 6.14, 6.20)",
		DeadlockFree: true,
		Build: func(s *State, _ Options) (Router, error) {
			star, err := multiPathFn(s)
			if err != nil {
				return nil, err
			}
			return &router{scheme: "multi-path", id: "multi-path", st: s,
				plan: func(k core.MulticastSet) Plan {
					return Plan{Paths: star(k).Paths}
				}}, nil
		},
	})
	MustRegister(Info{
		Name:         "multi-path-double",
		Description:  "multi-path on the double-channel network (Fig. 7.8 comparison)",
		DeadlockFree: true,
		Build: func(s *State, _ Options) (Router, error) {
			star, err := multiPathFn(s)
			if err != nil {
				return nil, err
			}
			return &router{scheme: "multi-path-double", id: "multi-path-double", st: s,
				plan: func(k core.MulticastSet) Plan {
					return Plan{Paths: classifyDouble(star(k))}
				}}, nil
		},
	})
	MustRegister(Info{
		Name:         "fixed-path",
		Description:  "fixed-path routing along the Hamiltonian path (Section 6.2.2)",
		DeadlockFree: true,
		Build: func(s *State, _ Options) (Router, error) {
			return &router{scheme: "fixed-path", id: "fixed-path", st: s,
				plan: func(k core.MulticastSet) Plan {
					return Plan{Paths: dfr.FixedPath(s.topo, s.label, k).Paths}
				}}, nil
		},
	})
	MustRegister(Info{
		Name:         "tree",
		Description:  "double-channel X-first multicast tree (Section 6.2.1, 2D mesh)",
		DeadlockFree: true,
		Build: func(s *State, _ Options) (Router, error) {
			m, ok := meshOf(s.topo)
			if !ok {
				return nil, fmt.Errorf("routing: tree scheme needs a 2D mesh, got %s", s.topo.Name())
			}
			return &router{scheme: "tree", id: "tree", st: s,
				plan: func(k core.MulticastSet) Plan {
					return Plan{Trees: dfr.DoubleChannelXFirst(m, k)}
				}}, nil
		},
	})
	MustRegister(Info{
		Name:         "naive-tree",
		Description:  "single-channel X-first tree — deadlock-PRONE (Section 6.1 demonstration)",
		DeadlockFree: false,
		Build: func(s *State, _ Options) (Router, error) {
			m, ok := meshOf(s.topo)
			if !ok {
				return nil, fmt.Errorf("routing: naive-tree scheme needs a 2D mesh, got %s", s.topo.Name())
			}
			return &router{scheme: "naive-tree", id: "naive-tree", st: s,
				plan: func(k core.MulticastSet) Plan {
					return Plan{Trees: dfr.XFirstTrees(m, k)}
				}}, nil
		},
	})
	MustRegister(Info{
		Name:         "adaptive-dual-path",
		Description:  "congestion-adaptive dual-path routing (Section 8.2 extension)",
		DeadlockFree: true,
		Build: func(s *State, _ Options) (Router, error) {
			live := func(k core.MulticastSet, oracle dfr.ChannelOracle) Plan {
				return Plan{Paths: dfr.AdaptiveDualPath(s.topo, s.label, k, oracle).Paths}
			}
			return &liveRouter{router{scheme: "adaptive-dual-path", id: "adaptive-dual-path", st: s,
				plan: func(k core.MulticastSet) Plan {
					return live(k, dfr.IdleOracle())
				},
				live: live}}, nil
		},
	})
	MustRegister(Info{
		Name:         "virtual-channel",
		Description:  "virtual-channel network partitioning into 2v monotone subnetworks (Section 8.2)",
		DeadlockFree: true,
		Build: func(s *State, opts Options) (Router, error) {
			v := opts.VirtualChannels
			if v == 0 {
				v = 2
			}
			if v < 1 {
				return nil, fmt.Errorf("routing: virtual-channel needs v >= 1, got %d", v)
			}
			return &router{scheme: "virtual-channel",
				id: fmt.Sprintf("virtual-channel?v=%d", v), st: s,
				plan: func(k core.MulticastSet) Plan {
					return Plan{Paths: dfr.VirtualChannelPath(s.topo, s.label, k, v).Paths}
				}}, nil
		},
	})
}

// multiPathFn dispatches the multi-path algorithm by topology. Masked
// views are routed over the mask but split by the underlying geometry.
func multiPathFn(s *State) (func(k core.MulticastSet) dfr.Star, error) {
	if m, ok := meshOf(s.topo); ok {
		return func(k core.MulticastSet) dfr.Star {
			return dfr.MultiPathMeshOn(s.topo, m, s.label, k)
		}, nil
	}
	if h, ok := cubeOf(s.topo); ok {
		return func(k core.MulticastSet) dfr.Star {
			return dfr.MultiPathCubeOn(s.topo, h, s.label, k)
		}, nil
	}
	return nil, fmt.Errorf("routing: multi-path needs a 2D mesh or hypercube, got %s", s.topo.Name())
}

// meshOf unwraps the 2D mesh beneath t, looking through a Masked view,
// so geometry-dependent schemes stay buildable over faulty meshes (the
// degraded router validates and repairs their blind spots).
func meshOf(t topology.Topology) (*topology.Mesh2D, bool) {
	m, ok := baseOf(t).(*topology.Mesh2D)
	return m, ok
}

// cubeOf unwraps the hypercube beneath t, looking through a Masked view.
func cubeOf(t topology.Topology) (*topology.Hypercube, bool) {
	h, ok := baseOf(t).(*topology.Hypercube)
	return h, ok
}

// baseOf looks through masked views — immutable Masked and incremental
// LiveMasked alike — to the underlying healthy topology.
func baseOf(t topology.Topology) topology.Topology {
	switch v := t.(type) {
	case *topology.Masked:
		return v.Base()
	case *topology.LiveMasked:
		return v.Base()
	}
	return t
}
