package experiments

import (
	"bytes"
	"testing"

	"multicastnet/internal/stats"
	"multicastnet/internal/topology"
)

// TestScaleStudySmall runs the full study machinery on a reduced
// workload set. ScaleStudy itself panics if any sharded run diverges
// from serial, so passing implies determinism on every covered topology;
// the assertions below pin the reporting.
func TestScaleStudySmall(t *testing.T) {
	o := ScaleOptions{
		Seed:        7,
		ShardCounts: []int{2, 4},
		Workloads: []ScaleWorkload{
			{
				Name:               "mesh16x16",
				Build:              func() topology.Topology { return topology.NewMesh2D(16, 16) },
				Scheme:             "dual-path",
				InterarrivalMicros: 1200,
				AvgDests:           8,
				MaxCycles:          6_000,
			},
			{
				Name:               "hypercube256",
				Build:              func() topology.Topology { return topology.NewHypercube(8) },
				Scheme:             "multi-path",
				InterarrivalMicros: 4800,
				AvgDests:           8,
				MaxCycles:          6_000,
			},
		},
		Check: true,
	}
	res := ScaleStudy(o)
	if got, want := len(res.Points), 2*3; got != want {
		t.Fatalf("points = %d, want %d", got, want)
	}
	for _, p := range res.Points {
		if !p.Matched {
			t.Errorf("%s shards=%d not matched", p.Workload, p.Shards)
		}
		if p.CyclesPerSec <= 0 || p.Speedup <= 0 {
			t.Errorf("%s shards=%d: degenerate measurement %+v", p.Workload, p.Shards, p)
		}
		if p.Shards == 1 && p.Speedup != 1 {
			t.Errorf("%s serial speedup = %v, want 1", p.Workload, p.Speedup)
		}
	}
	if len(res.Throughput.Series) != 2 || len(res.Speedup.Series) != 2 {
		t.Fatalf("figure series: throughput=%d speedup=%d, want 2 and 2",
			len(res.Throughput.Series), len(res.Speedup.Series))
	}
}

// figCSV renders a figure to CSV bytes for identity comparison.
func figCSV(t *testing.T, f *stats.Figure) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDynamicFigureShardsByteIdentical pins the -shards contract of
// mcdynamic: a figure produced under the sharded engine is byte-for-byte
// the figure produced serially.
func TestDynamicFigureShardsByteIdentical(t *testing.T) {
	o := DynamicQuick()
	o.Loads = []float64{1500, 400}
	o.Dests = []int{10}
	o.MaxCycles = 30_000
	serial := figCSV(t, Fig710LatencyVsLoadSingle(o))
	o.Shards = 3
	sharded := figCSV(t, Fig710LatencyVsLoadSingle(o))
	if !bytes.Equal(serial, sharded) {
		t.Fatalf("Fig 7.10 diverged under -shards:\nserial:\n%s\nsharded:\n%s", serial, sharded)
	}
}

// TestFaultFiguresShardsByteIdentical pins the -shards contract of
// mcfault: the whole degraded-mode stack (masked routing, mid-flight
// kills, retries) is byte-identical under the sharded engine.
func TestFaultFiguresShardsByteIdentical(t *testing.T) {
	o := FaultQuick()
	o.Rates = []float64{0, 0.10}
	wantD, wantL := FaultFigures(o)
	o.Shards = 2
	gotD, gotL := FaultFigures(o)
	if !bytes.Equal(figCSV(t, wantD), figCSV(t, gotD)) {
		t.Fatal("fault delivery figure diverged under -shards")
	}
	if !bytes.Equal(figCSV(t, wantL), figCSV(t, gotL)) {
		t.Fatal("fault latency figure diverged under -shards")
	}
}
