// Versioned workload traces: any generated stream can be recorded into a
// plain-text trace file and replayed byte-identically. The format is
// line-oriented and self-describing:
//
//	mcworkload-trace v1
//	topo <nodes> <name>
//	seed <seed>
//	spec model=<m> arrivals=<a> requests=<n> groups=<n> groupsize=<n> \
//	     avgdests=<n> zipfs=<g> hotfrac=<g> hotnodes=<n> meangap=<g> \
//	     burstmean=<g> burstgap=<g> idlegap=<g> phasegap=<n>
//	begin <count>
//	<at> <src> <dest> [<dest> ...]
//	...
//	end <count>
//
// (the spec line is a single line; it is wrapped here for readability).
// The parser is strict: it rejects unknown versions, malformed or
// out-of-range fields, time-regressing requests, invalid destination
// sets, count mismatches, truncation, and trailing bytes — a trace that
// parses replays exactly what was recorded.
package workload

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"multicastnet/internal/topology"
)

// traceVersion is the format identifier of the current trace version.
const traceVersion = "mcworkload-trace v1"

// maxTraceLine bounds one trace line (a request can carry thousands of
// destinations on large topologies).
const maxTraceLine = 1 << 20

// Trace is a recorded workload: the generating provenance (topology
// shape, seed, normalized spec) plus the full request sequence.
type Trace struct {
	Nodes int    // node count the requests are addressed against
	Topo  string // human-readable topology name, e.g. "64x64 mesh"
	Seed  uint64
	Spec  Spec
	Reqs  []Request
}

// Record runs a fresh stream over (t, spec, seed) to exhaustion and
// returns the trace. The recorded requests are exactly what a live
// Stream with the same inputs yields.
func Record(t topology.Topology, spec Spec, seed uint64) (*Trace, error) {
	s, err := New(t, spec, seed)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Nodes: t.Nodes(), Topo: t.Name(), Seed: seed, Spec: s.Spec()}
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		tr.Reqs = append(tr.Reqs, r)
	}
	return tr, nil
}

// Source returns a replayer over the trace's requests. Replaying a
// recorded trace is byte-identical to the live generator it recorded.
func (t *Trace) Source() Source { return &replayer{reqs: t.Reqs} }

type replayer struct {
	reqs []Request
	i    int
}

func (r *replayer) Next() (Request, bool) {
	if r.i >= len(r.reqs) {
		return Request{}, false
	}
	req := r.reqs[r.i]
	r.i++
	return req, true
}

// WriteTrace serializes the trace in canonical form: writing, parsing,
// and re-writing a trace is byte-identical.
func WriteTrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\n", traceVersion)
	fmt.Fprintf(bw, "topo %d %s\n", t.Nodes, t.Topo)
	fmt.Fprintf(bw, "seed %d\n", t.Seed)
	sp := t.Spec
	fmt.Fprintf(bw, "spec model=%s arrivals=%s requests=%d groups=%d groupsize=%d avgdests=%d zipfs=%g hotfrac=%g hotnodes=%d meangap=%g burstmean=%g burstgap=%g idlegap=%g phasegap=%d\n",
		sp.Model, sp.Arrivals, sp.Requests, sp.Groups, sp.GroupSize, sp.AvgDests,
		sp.ZipfS, sp.HotFrac, sp.HotNodes, sp.MeanGap, sp.BurstMean, sp.BurstGap,
		sp.IdleGap, sp.PhaseGap)
	fmt.Fprintf(bw, "begin %d\n", len(t.Reqs))
	for _, r := range t.Reqs {
		fmt.Fprintf(bw, "%d %d", r.At, r.Src)
		for _, d := range r.Dests {
			fmt.Fprintf(bw, " %d", d)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintf(bw, "end %d\n", len(t.Reqs))
	return bw.Flush()
}

// ReadTrace parses and validates a trace. Every structural or semantic
// defect — wrong version, malformed numbers, out-of-range nodes,
// regressing timestamps, invalid destination sets, count mismatches,
// missing end marker, trailing data — is an error naming the line.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxTraceLine)
	line := 0
	nextLine := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", fmt.Errorf("workload: trace truncated at line %d", line+1)
		}
		line++
		return sc.Text(), nil
	}

	v, err := nextLine()
	if err != nil {
		return nil, err
	}
	if v != traceVersion {
		return nil, fmt.Errorf("workload: unsupported trace version %q (want %q)", v, traceVersion)
	}

	t := &Trace{}
	topoLine, err := nextLine()
	if err != nil {
		return nil, err
	}
	rest, ok := strings.CutPrefix(topoLine, "topo ")
	if !ok {
		return nil, fmt.Errorf("workload: line %d: expected topo line, got %q", line, topoLine)
	}
	nodesStr, name, ok := strings.Cut(rest, " ")
	if !ok || name == "" {
		return nil, fmt.Errorf("workload: line %d: topo line needs node count and name", line)
	}
	t.Nodes, err = strconv.Atoi(nodesStr)
	if err != nil || t.Nodes < 2 {
		return nil, fmt.Errorf("workload: line %d: bad topo node count %q", line, nodesStr)
	}
	t.Topo = name

	seedLine, err := nextLine()
	if err != nil {
		return nil, err
	}
	rest, ok = strings.CutPrefix(seedLine, "seed ")
	if !ok {
		return nil, fmt.Errorf("workload: line %d: expected seed line, got %q", line, seedLine)
	}
	t.Seed, err = strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("workload: line %d: bad seed %q", line, rest)
	}

	specLine, err := nextLine()
	if err != nil {
		return nil, err
	}
	rest, ok = strings.CutPrefix(specLine, "spec ")
	if !ok {
		return nil, fmt.Errorf("workload: line %d: expected spec line, got %q", line, specLine)
	}
	if t.Spec, err = parseSpec(rest); err != nil {
		return nil, fmt.Errorf("workload: line %d: %w", line, err)
	}

	beginLine, err := nextLine()
	if err != nil {
		return nil, err
	}
	rest, ok = strings.CutPrefix(beginLine, "begin ")
	if !ok {
		return nil, fmt.Errorf("workload: line %d: expected begin line, got %q", line, beginLine)
	}
	count, err := strconv.Atoi(rest)
	if err != nil || count < 0 {
		return nil, fmt.Errorf("workload: line %d: bad request count %q", line, rest)
	}

	var prevAt int64
	for i := 0; i < count; i++ {
		reqLine, err := nextLine()
		if err != nil {
			return nil, err
		}
		req, err := parseRequest(reqLine, t.Nodes)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		if req.At < prevAt {
			return nil, fmt.Errorf("workload: line %d: request time %d regresses below %d", line, req.At, prevAt)
		}
		prevAt = req.At
		t.Reqs = append(t.Reqs, req)
	}

	endLine, err := nextLine()
	if err != nil {
		return nil, err
	}
	rest, ok = strings.CutPrefix(endLine, "end ")
	if !ok {
		return nil, fmt.Errorf("workload: line %d: expected end line, got %q", line, endLine)
	}
	endCount, err := strconv.Atoi(rest)
	if err != nil || endCount != count {
		return nil, fmt.Errorf("workload: line %d: end count %q does not match begin count %d", line, rest, count)
	}
	if sc.Scan() {
		return nil, fmt.Errorf("workload: trailing data after end marker at line %d", line+1)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseTrace is ReadTrace over a byte slice.
func ParseTrace(b []byte) (*Trace, error) { return ReadTrace(bytes.NewReader(b)) }

// parseSpec parses the canonical key=value spec fields. All fourteen
// keys must appear exactly once, in any order; unknown keys are errors.
func parseSpec(s string) (Spec, error) {
	var sp Spec
	seen := make(map[string]bool, 14)
	for _, f := range strings.Fields(s) {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return sp, fmt.Errorf("spec field %q is not key=value", f)
		}
		if seen[key] {
			return sp, fmt.Errorf("duplicate spec key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "model":
			sp.Model = val
		case "arrivals":
			sp.Arrivals = val
		case "requests":
			sp.Requests, err = strconv.Atoi(val)
		case "groups":
			sp.Groups, err = strconv.Atoi(val)
		case "groupsize":
			sp.GroupSize, err = strconv.Atoi(val)
		case "avgdests":
			sp.AvgDests, err = strconv.Atoi(val)
		case "zipfs":
			sp.ZipfS, err = strconv.ParseFloat(val, 64)
		case "hotfrac":
			sp.HotFrac, err = strconv.ParseFloat(val, 64)
		case "hotnodes":
			sp.HotNodes, err = strconv.Atoi(val)
		case "meangap":
			sp.MeanGap, err = strconv.ParseFloat(val, 64)
		case "burstmean":
			sp.BurstMean, err = strconv.ParseFloat(val, 64)
		case "burstgap":
			sp.BurstGap, err = strconv.ParseFloat(val, 64)
		case "idlegap":
			sp.IdleGap, err = strconv.ParseFloat(val, 64)
		case "phasegap":
			var v int
			v, err = strconv.Atoi(val)
			sp.PhaseGap = int64(v)
		default:
			return sp, fmt.Errorf("unknown spec key %q", key)
		}
		if err != nil {
			return sp, fmt.Errorf("bad spec value %q: %v", f, err)
		}
	}
	if len(seen) != 14 {
		return sp, fmt.Errorf("spec has %d of 14 required keys", len(seen))
	}
	return sp, nil
}

// parseRequest parses "<at> <src> <dest> [<dest> ...]" and validates the
// destination set against the node count.
func parseRequest(s string, nodes int) (Request, error) {
	fields := strings.Fields(s)
	if len(fields) < 3 {
		return Request{}, fmt.Errorf("request %q needs at, src, and at least one destination", s)
	}
	at, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil || at < 0 {
		return Request{}, fmt.Errorf("bad request time %q", fields[0])
	}
	src, err := strconv.Atoi(fields[1])
	if err != nil || src < 0 || src >= nodes {
		return Request{}, fmt.Errorf("source %q out of range [0,%d)", fields[1], nodes)
	}
	req := Request{At: at, Src: topology.NodeID(src)}
	req.Dests = make([]topology.NodeID, 0, len(fields)-2)
	for _, f := range fields[2:] {
		d, err := strconv.Atoi(f)
		if err != nil || d < 0 || d >= nodes {
			return Request{}, fmt.Errorf("destination %q out of range [0,%d)", f, nodes)
		}
		nd := topology.NodeID(d)
		if nd == req.Src {
			return Request{}, fmt.Errorf("source %d listed as destination", d)
		}
		if containsNode(req.Dests, nd) {
			return Request{}, fmt.Errorf("duplicate destination %d", d)
		}
		req.Dests = append(req.Dests, nd)
	}
	return req, nil
}
