package wormsim

import (
	"multicastnet/internal/dfr"
	"multicastnet/internal/topology"
)

// Mid-run fault injection. A failed channel is hardware that stops
// moving flits: the worm holding it loses its pipeline (wormhole flow
// control cannot back flits out of acquired channels, Section 2.3.4), so
// the whole message is dropped and every channel it held is flushed and
// released. Worms that later request a failed channel are dropped at the
// point of request. Lost destination deliveries are reported through
// OnLost so drivers can account delivery ratios and trigger retries.

// OnLost registers a callback invoked once per destination that a
// fault-killed worm will never deliver, with the destination count of
// the owning multicast.
func (n *Network) OnLost(fn func(dest topology.NodeID, mcastSize int)) { n.onLost = fn }

// KilledWorms returns the number of worms killed by channel failures so
// far.
func (n *Network) KilledWorms() int { return n.killed }

// FailWhere fails every channel matching pred — both channels already
// interned and channels interned later (routes injected after the fault
// that still reference dead hardware lose their worms on contact). Worms
// currently holding or queued on a failing channel are killed
// immediately, in ascending id order. It returns the number of worms
// killed. Victim dedup uses epoch stamps over the worm slots, so a fault
// activation mid-run allocates nothing once the scratch has warmed up.
func (n *Network) FailWhere(pred func(c dfr.Channel) bool) int {
	n.deadPreds = append(n.deadPreds, pred)
	n.victimEpoch++
	if len(n.victimStamp) < len(n.slots) {
		n.victimStamp = append(n.victimStamp, make([]int64, len(n.slots)-len(n.victimStamp))...)
	}
	victims := n.victimBuf[:0]
	collect := func(wi wormRef) {
		if wi >= 0 && !n.slots[wi].done && n.victimStamp[wi] != n.victimEpoch {
			n.victimStamp[wi] = n.victimEpoch
			victims = append(victims, wi)
		}
	}
	for c, id := range n.chanIDs {
		if n.chanOwner[id] == deadChan || !pred(c) {
			continue
		}
		// Collect the owner before the dead sentinel overwrites it.
		collect(n.chanOwner[id])
		n.chanOwner[id] = deadChan
		n.chanDead[id] = true
		for _, q := range n.chanWaiters(id) {
			collect(q)
		}
	}
	// Kill in ascending id order: chanIDs is a map, so the collection
	// order above is not deterministic, but the kill order — and with it
	// the OnLost callback order and all downstream wakes — must be.
	n.sortRefsByID(victims)
	for _, wi := range victims {
		n.killWorm(wi)
	}
	n.victimBuf = victims[:0]
	return len(victims)
}

// killWorm drops an in-flight worm: it leaves every wait queue, releases
// every channel it holds (waking their FIFO heads), reports its
// undelivered destinations through OnLost, and retires. The multicast is
// marked lossy so OnComplete never fires for it.
func (n *Network) killWorm(wi wormRef) {
	w := &n.slots[wi]
	if w.done {
		return
	}
	n.killed++
	if w.kind == pathWorm {
		if w.queuedAt >= 0 && w.queuedAt == w.headIdx && w.headIdx < len(w.chans) {
			n.dequeue(w.chans[w.headIdx], wi)
		}
		for i := w.released; i < w.headIdx; i++ {
			n.release(w.chans[i], wi)
		}
	} else {
		if w.headIdx < len(w.levels) {
			l := &w.levels[w.headIdx]
			for i, id := range l.channels {
				switch {
				case l.taken[i]:
					n.release(id, wi)
				case l.queued:
					n.dequeue(id, wi)
				}
			}
		}
		for li := w.released; li < w.headIdx && li < len(w.levels); li++ {
			for _, id := range w.levels[li].channels {
				n.release(id, wi)
			}
		}
	}
	mci := w.mcast
	for i := range w.deliveries {
		d := &w.deliveries[i]
		if d.done {
			continue
		}
		d.done = true
		mc := &n.mcSlots[mci]
		mc.remaining--
		mc.lost++
		if n.onLost != nil {
			n.onLost(d.dest, mc.size)
		}
	}
	w.undeliv = 0
	n.retire(wi)
}

// dequeue removes wi from one channel's wait queue; if the channel is
// free and a new head emerges, that head is woken (it may have been
// waiting behind wi).
func (n *Network) dequeue(id int32, wi wormRef) {
	q := n.chanQueue[id]
	h := int(n.chanQHead[id])
	live := q[h:]
	for i, x := range live {
		if x == wi {
			n.chanQueue[id] = append(q[:h+i], live[i+1:]...)
			break
		}
	}
	if int(n.chanQHead[id]) == len(n.chanQueue[id]) {
		n.chanQueue[id] = n.chanQueue[id][:0]
		n.chanQHead[id] = 0
	}
	if n.chanOwner[id] == noWorm {
		if head := n.chanFront(id); head != noWorm {
			n.wake(head)
		}
	}
}
