// Package heuristics implements the basic heuristic multicast routing
// algorithms of Chapter 5 — sorted MP/MC (Section 5.1), greedy ST
// (Section 5.2), and the X-first and divided-greedy MT algorithms
// (Section 5.3) — together with the baselines of the performance study:
// multiple one-to-one, broadcast, the LEN hypercube heuristic [20], and
// the KMB Steiner heuristic [55].
//
// Each algorithm is written in the paper's hybrid distributed style: a
// message-preparation step at the source computes the routing control
// field carried in the message header, and a message-routing step executed
// at every forward node decides the next hop(s). The package drives the
// per-node steps to completion and returns the resulting route object.
//
// Every kernel exists in two forms: a zero-allocation method on
// Workspace (the hot path of the Chapter 7 static study) and an
// exported convenience function with the original signature, which
// borrows a pooled workspace and materializes the original result type.
package heuristics

import (
	"slices"

	"multicastnet/internal/core"
	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// sortPacked sorts ws.keys (each packed key<<32 | id) and unpacks the
// ids into ws.sorted. Keys are injective over nodes (true for both the
// cycle key f and the (distance, id) pair), so sorting the packed values
// reproduces the comparison-sort order of the original implementations
// exactly, without sort.Slice's closure allocation.
func (ws *Workspace) sortPacked() {
	slices.Sort(ws.keys)
	ws.sorted = ws.sorted[:0]
	for _, p := range ws.keys {
		ws.sorted = append(ws.sorted, topology.NodeID(p&0xffffffff))
	}
}

// prepareSortedMP fills ws.sorted with the destinations in ascending
// cycle-key order (the message-preparation step of Fig. 5.1).
func (ws *Workspace) prepareSortedMP(c *labeling.HamiltonCycle, k core.MulticastSet) {
	ws.keys = ws.keys[:0]
	for _, d := range k.Dests {
		ws.keys = append(ws.keys, int64(c.SortKey(k.Source, d))<<32|int64(d))
	}
	ws.sortPacked()
}

// SortedMPPrepare is the message-preparation part of the sorted MP
// algorithm (Fig. 5.1): it returns the destination list sorted in
// ascending order of the cycle key f.
func SortedMPPrepare(c *labeling.HamiltonCycle, k core.MulticastSet) []topology.NodeID {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	ws.prepareSortedMP(c, k)
	out := make([]topology.NodeID, len(ws.sorted))
	copy(out, ws.sorted)
	return out
}

// SortedMP runs the sorted MP algorithm of Section 5.1 (Figs. 5.1/5.2)
// and returns the traffic of the resulting multicast path, which is left
// in ws.path until the next kernel call. By Theorem 5.1 the key f
// strictly increases along the route, so the path is simple and visits
// the destinations in sorted order.
func (ws *Workspace) SortedMP(t topology.Topology, c *labeling.HamiltonCycle, k core.MulticastSet) int {
	ws.ensure(t)
	ws.prepareSortedMP(c, k)
	dests := ws.sorted
	w := k.Source
	ws.path = append(ws.path[:0], w)
	for {
		// Message-routing step (Fig. 5.2) at node w: pop w if it is the
		// next destination, then take the neighbor with the greatest key
		// not exceeding f(d) for the next destination d.
		if len(dests) > 0 && dests[0] == w {
			dests = dests[1:] // deliver to the local node
		}
		if len(dests) == 0 {
			return len(ws.path) - 1
		}
		fd := c.SortKey(k.Source, dests[0])
		var (
			best  topology.NodeID
			bestF = -1
		)
		for _, p := range t.Neighbors(w, ws.nbuf[:0]) {
			if fp := c.SortKey(k.Source, p); fp <= fd && fp > bestF {
				best, bestF = p, fp
			}
		}
		if bestF < 0 {
			// Impossible by Fact 2 of Theorem 5.1 (the cycle successor of
			// w always qualifies); guard against a corrupted cycle.
			panic("heuristics: sorted MP routing stuck")
		}
		w = best
		ws.path = append(ws.path, w)
	}
}

// SortedMP runs the sorted MP algorithm of Section 5.1 and returns the
// multicast path. See Workspace.SortedMP for the allocation-free form.
func SortedMP(t topology.Topology, c *labeling.HamiltonCycle, k core.MulticastSet) core.Path {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	ws.SortedMP(t, c, k)
	nodes := make([]topology.NodeID, len(ws.path))
	copy(nodes, ws.path)
	return core.Path{Nodes: nodes}
}

// SortedMC runs the sorted MC variant of Section 5.1 and returns the
// traffic of the multicast cycle (left in ws.path, the closing edge back
// to the source implicit): after the last destination the message
// continues around the Hamilton cycle back to the source, giving the
// source a collective acknowledgement (Definition 3.2). The source is
// treated as a final destination with key m + h(u0).
func (ws *Workspace) SortedMC(t topology.Topology, c *labeling.HamiltonCycle, k core.MulticastSet) int {
	ws.SortedMP(t, c, k)
	m := c.Len()
	u0 := k.Source
	keyBound := m + c.H(u0)
	key := func(x topology.NodeID) int {
		if x == u0 {
			return keyBound
		}
		return c.SortKey(u0, x)
	}
	w := ws.path[len(ws.path)-1]
	guard := 0
	for w != u0 {
		var (
			best  topology.NodeID
			bestF = -1
		)
		for _, q := range t.Neighbors(w, ws.nbuf[:0]) {
			if fq := key(q); fq <= keyBound && fq > bestF {
				best, bestF = q, fq
			}
		}
		w = best
		if w != u0 {
			ws.path = append(ws.path, w)
		}
		if guard++; guard > m+1 {
			panic("heuristics: sorted MC failed to close")
		}
	}
	if len(ws.path) < 2 {
		return 0
	}
	return len(ws.path)
}

// SortedMC runs the sorted MC variant of Section 5.1. See
// Workspace.SortedMC for the allocation-free form.
func SortedMC(t topology.Topology, c *labeling.HamiltonCycle, k core.MulticastSet) core.Cycle {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	ws.SortedMC(t, c, k)
	nodes := make([]topology.NodeID, len(ws.path))
	copy(nodes, ws.path)
	return core.Cycle{Nodes: nodes}
}
