package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/100 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(1)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("value %d drawn %d times out of 7000 (expect ~1000)", v, c)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	f := func(_ int) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(99)
	var m Mean
	for i := 0; i < 200000; i++ {
		m.Add(r.ExpFloat64(300))
	}
	if math.Abs(m.Value()-300) > 5 {
		t.Errorf("exponential mean %.2f, want ~300", m.Value())
	}
}

func TestPerm(t *testing.T) {
	r := NewRand(5)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d in perm", v)
		}
		seen[v] = true
	}
}

func TestSampleDistinctAndExcluding(t *testing.T) {
	r := NewRand(11)
	for trial := 0; trial < 100; trial++ {
		s := r.Sample(64, 10, 7)
		seen := make(map[int]bool)
		for _, v := range s {
			if v == 7 {
				t.Fatal("excluded value sampled")
			}
			if v < 0 || v >= 64 {
				t.Fatalf("out of range: %d", v)
			}
			if seen[v] {
				t.Fatal("duplicate sample")
			}
			seen[v] = true
		}
		if len(s) != 10 {
			t.Fatalf("sample size %d", len(s))
		}
	}
}

func TestSamplePanicsWhenImpossible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRand(1).Sample(3, 3, 0)
}

func TestMeanVariance(t *testing.T) {
	var m Mean
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.Value() != 5 {
		t.Errorf("mean %.3f, want 5", m.Value())
	}
	if math.Abs(m.Variance()-4.571428571) > 1e-6 {
		t.Errorf("variance %.6f, want 4.571429", m.Variance())
	}
}

func TestBatchMeansConvergence(t *testing.T) {
	b := NewBatchMeans(100)
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		b.Add(10 + r.Float64())
	}
	if b.Batches() != 100 {
		t.Fatalf("batches = %d", b.Batches())
	}
	if math.Abs(b.Mean()-10.5) > 0.05 {
		t.Errorf("mean %.3f, want ~10.5", b.Mean())
	}
	if !b.Converged(0.05, 5) {
		t.Errorf("tight distribution should converge: half-width %.4f", b.HalfWidth())
	}
}

func TestBatchMeansNotConvergedEarly(t *testing.T) {
	b := NewBatchMeans(100)
	b.Add(1)
	if b.Converged(0.05, 2) {
		t.Error("converged with zero batches")
	}
	if !math.IsInf(b.HalfWidth(), 1) {
		t.Error("half-width should be infinite before two batches")
	}
	if b.Mean() != 1 {
		t.Errorf("partial-batch mean %.2f, want 1", b.Mean())
	}
	if b.Observations() != 1 {
		t.Errorf("observations %d, want 1", b.Observations())
	}
}

func TestTCriticalMonotone(t *testing.T) {
	prev := math.Inf(1)
	for dof := 1; dof <= 200; dof++ {
		cur := tCritical95(dof)
		if cur > prev {
			t.Fatalf("t table not monotone at dof=%d: %f > %f", dof, cur, prev)
		}
		prev = cur
	}
	if tCritical95(1000) != 1.960 {
		t.Error("normal limit wrong")
	}
}

func TestSeriesAndFigureTable(t *testing.T) {
	fig := &Figure{ID: "Fig X", Title: "test", XLabel: "k", YLabel: "traffic"}
	a := fig.AddSeries("alg-a")
	b := fig.AddSeries("alg-b")
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(2, 21.5)
	var sb strings.Builder
	if err := fig.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig X", "alg-a", "alg-b", "21.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	var csv strings.Builder
	if err := fig.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "k,alg-a,alg-b") {
		t.Errorf("bad CSV header:\n%s", csv.String())
	}
	if fig.Get("alg-a") != a || fig.Get("nope") != nil {
		t.Error("Get misbehaves")
	}
	if y, ok := a.At(2); !ok || y != 20 {
		t.Error("Series.At misbehaves")
	}
}

func TestSeriesAddWithError(t *testing.T) {
	var s Series
	s.Add(1, 5)
	s.AddWithError(2, 6, 0.5)
	if len(s.YError) != 2 || s.YError[0] != 0 || s.YError[1] != 0.5 {
		t.Errorf("YError = %v", s.YError)
	}
}
