// Command mcstatic regenerates the static-traffic experiments of
// Section 7.1 (Figures 7.1–7.7) plus the labeling and ordering ablations,
// printing each as an aligned table (or CSV with -csv).
//
// Usage:
//
//	mcstatic                 # all figures, 1000 repetitions each
//	mcstatic -reps 100       # faster
//	mcstatic -fig 7.4 -csv   # one figure as CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"multicastnet/internal/experiments"
	"multicastnet/internal/stats"
)

func main() {
	reps := flag.Int("reps", 1000, "random multicast sets per destination count")
	seed := flag.Uint64("seed", 1990, "workload seed")
	figID := flag.String("fig", "", "only this figure (e.g. 7.1, 7.5, ablationA)")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	parallel := flag.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS, 1 = sequential); output is identical at every worker count")
	flag.Parse()

	opts := experiments.Options{Reps: *reps, Seed: *seed, Parallel: *parallel}
	figs := map[string]func(experiments.Options) *stats.Figure{
		"7.1":       experiments.Fig71SortedMPMesh,
		"7.2":       experiments.Fig72SortedMPCube,
		"7.3":       experiments.Fig73GreedySTMesh,
		"7.4":       experiments.Fig74GreedySTCube,
		"7.5":       experiments.Fig75MTMesh,
		"7.6":       experiments.Fig76PathTrafficCube,
		"7.7":       experiments.Fig77PathTrafficMesh,
		"ablationA": experiments.AblationLabeling,
		"ablationB": experiments.AblationDestinationOrder,
		"extV":      experiments.ExtVirtualChannelsStatic,
		"ext3D":     experiments.ExtDualPath3D,
	}
	order := []string{"7.1", "7.2", "7.3", "7.4", "7.5", "7.6", "7.7", "ablationA", "ablationB", "extV", "ext3D"}

	run := func(id string) {
		fn, ok := figs[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "mcstatic: unknown figure %q\n", id)
			os.Exit(1)
		}
		fig := fn(opts)
		var err error
		if *csv {
			err = fig.WriteCSV(os.Stdout)
		} else {
			err = fig.WriteTable(os.Stdout)
			fmt.Println()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcstatic:", err)
			os.Exit(1)
		}
	}

	if *figID != "" {
		run(*figID)
		return
	}
	for _, id := range order {
		run(id)
	}
}
