GO ?= go

.PHONY: check fmt vet build test race bench bench-baseline bench-routing-baseline bench-heuristics-baseline results

## check: everything CI runs — format, vet, build, race tests, quick benchmarks
check: fmt vet build race bench

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: quick performance smoke — core throughput, figure pipeline, routing engine, heuristic kernels, static sweep scaling
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkWormsimCyclesPerSec|BenchmarkDynamicFigures|BenchmarkSimulator' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkRoutingPlan' -benchtime 100x ./internal/routing
	$(GO) test -run '^$$' -bench 'BenchmarkGreedyST|BenchmarkKMB|BenchmarkSortedMP' -benchmem -benchtime 100x ./internal/heuristics
	$(GO) test -run '^$$' -bench 'BenchmarkStaticTable' -benchmem -benchtime 1x ./internal/experiments

## bench-baseline: regenerate the committed BENCH_wormsim.json
bench-baseline:
	$(GO) run ./cmd/mcfigures -bench -quick -parallel 1 -out .

## bench-routing-baseline: regenerate the committed BENCH_routing.json
bench-routing-baseline:
	$(GO) test -run TestWriteRoutingBenchBaseline -update-routing-bench ./internal/routing

## bench-heuristics-baseline: regenerate the committed BENCH_heuristics.json (before/after kernel comparison)
bench-heuristics-baseline:
	$(GO) test -run TestWriteHeuristicsBenchBaseline -update-heuristics-bench ./internal/heuristics

## results: regenerate every table and figure at full fidelity
results:
	$(GO) run ./cmd/mcfigures -out results
