package routing_test

import (
	"errors"
	"testing"

	"multicastnet/internal/core"
	"multicastnet/internal/dfr"
	"multicastnet/internal/fault"
	"multicastnet/internal/routing"
	"multicastnet/internal/topology"
)

// fuzzSchemes are the path-based schemes checked for label monotonicity
// (the Assertion 2 deadlock-freedom argument: every path stays inside
// either the high- or the low-channel subnetwork).
var fuzzSchemes = []string{
	"dual-path", "dual-path-double", "multi-path", "multi-path-double",
	"fixed-path", "adaptive-dual-path", "virtual-channel",
}

// fuzzTreeSchemes produce tree routes; they are checked for coverage and
// channel validity only.
var fuzzTreeSchemes = []string{"tree", "naive-tree"}

// checkMonotone asserts that a path's labels are strictly monotone — the
// property that keeps the high/low channel subnetworks acyclic.
func checkMonotone(t *testing.T, st *routing.State, name string, p dfr.PathRoute) {
	t.Helper()
	if len(p.Nodes) < 2 {
		return
	}
	up := st.Label(p.Nodes[1]) > st.Label(p.Nodes[0])
	for i := 1; i < len(p.Nodes); i++ {
		prev, cur := st.Label(p.Nodes[i-1]), st.Label(p.Nodes[i])
		if up && cur <= prev {
			t.Fatalf("%s: path %v not label-increasing at hop %d (%d -> %d)",
				name, p.Nodes, i, prev, cur)
		}
		if !up && cur >= prev {
			t.Fatalf("%s: path %v not label-decreasing at hop %d (%d -> %d)",
				name, p.Nodes, i, prev, cur)
		}
	}
}

// checkDegraded routes k around the mask with the named scheme's degraded
// router and asserts the fault contract: no panic, every returned error
// is a typed partition error, and the plan covers exactly the reachable
// destinations using only live channels.
func checkDegraded(t *testing.T, name string, st *routing.State, mask *fault.Mask,
	k core.MulticastSet) {
	t.Helper()
	dr, err := fault.NewRouter(name, st, mask)
	if err != nil {
		t.Fatalf("%s: NewRouter: %v", name, err)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: PlanDegraded panicked on mask (%d events): %v",
				name, mask.Events(), r)
		}
	}()
	plan, _, perr := dr.PlanDegraded(k)
	if perr != nil && !errors.Is(perr, fault.ErrPartitioned) {
		t.Fatalf("%s: untyped degraded error: %v", name, perr)
	}
	masked := mask.MaskTopology()
	var live []topology.NodeID
	for _, d := range k.Dests {
		if !mask.NodeDead(k.Source) && masked.Reachable(k.Source, d) {
			live = append(live, d)
		}
	}
	if len(live) < len(k.Dests) && perr == nil {
		t.Fatalf("%s: %d destination(s) severed but no partition error",
			name, len(k.Dests)-len(live))
	}
	if len(live) == 0 {
		return
	}
	lk := core.MulticastSet{Source: k.Source, Dests: live}
	if err := plan.Validate(masked, lk); err != nil {
		t.Fatalf("%s: degraded plan invalid over masked mesh: %v", name, err)
	}
	for _, p := range plan.Paths {
		for i := 1; i < len(p.Nodes); i++ {
			c := dfr.Channel{From: p.Nodes[i-1], To: p.Nodes[i], Class: p.HopClass(i - 1)}
			if mask.ChannelDead(c) {
				t.Fatalf("%s: degraded plan crosses dead channel %v", name, c)
			}
		}
	}
	for _, tr := range plan.Trees {
		for _, e := range tr.Edges {
			if mask.ChannelDead(e) {
				t.Fatalf("%s: degraded tree crosses dead channel %v", name, e)
			}
		}
	}
}

// FuzzPlan drives every registry scheme over fuzzer-chosen mesh sizes,
// destination sets, and fault masks, and asserts the routing invariants:
// on healthy hardware the plan covers each destination exactly once,
// uses only real channels, and (for the path schemes) every path is
// label-monotone; under the fuzzed fault mask the degraded router either
// covers every reachable destination over live channels or reports a
// typed partition error — never a panic.
func FuzzPlan(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint16(0), []byte{5, 10, 15}, uint64(0), uint8(0))
	f.Add(uint8(8), uint8(8), uint16(27), []byte{0, 1, 2, 3, 60, 61, 62, 63}, uint64(7), uint8(9))
	f.Add(uint8(2), uint8(3), uint16(5), []byte{0}, uint64(42), uint8(3))
	f.Add(uint8(7), uint8(2), uint16(13), []byte{1, 1, 1, 12}, uint64(1990), uint8(30))
	f.Fuzz(func(t *testing.T, w, h uint8, src uint16, destBytes []byte,
		faultSeed uint64, faultLinks uint8) {
		width := 2 + int(w)%7  // 2..8
		height := 2 + int(h)%7 // 2..8
		m := topology.NewMesh2D(width, height)
		source := topology.NodeID(int(src) % m.Nodes())
		seen := map[topology.NodeID]bool{source: true}
		var dests []topology.NodeID
		for _, b := range destBytes {
			d := topology.NodeID(int(b) % m.Nodes())
			if !seen[d] {
				seen[d] = true
				dests = append(dests, d)
			}
		}
		if len(dests) == 0 {
			t.Skip("no destinations")
		}
		k, err := core.NewMulticastSet(m, source, dests)
		if err != nil {
			t.Fatalf("set construction: %v", err)
		}
		st, err := routing.NewState(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range fuzzSchemes {
			r, err := routing.New(name, st)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			plan := r.PlanSet(k)
			if err := plan.Validate(m, k); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for _, p := range plan.Paths {
				checkMonotone(t, st, name, p)
			}
		}
		for _, name := range fuzzTreeSchemes {
			r, err := routing.New(name, st)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := r.PlanSet(k).Validate(m, k); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		// Fault-mask leg: kill a fuzzer-chosen set of links (at most a
		// third of the mesh, so the mask stays routable often enough to
		// exercise repair, not just partition reporting) and re-check
		// every scheme through its degraded router.
		nLinks := len(fault.EnumerateLinks(m))
		links := int(faultLinks) % (nLinks/3 + 2)
		if links == 0 {
			return
		}
		mask := fault.NewPlan(m, fault.Spec{Links: links, Seed: faultSeed}).FullMask()
		for _, name := range append(append([]string(nil), fuzzSchemes...), fuzzTreeSchemes...) {
			checkDegraded(t, name, st, mask, k)
		}
	})
}
