package core

import (
	"fmt"

	"multicastnet/internal/labeling"
	"multicastnet/internal/topology"
)

// NextHop is the partial-order-preserving routing function R of
// Sections 6.2.2 and 6.3, defined over a Hamiltonian labeling l. The
// dissertation states R as
//
//	R(u, v) = w, a neighbor of u, with
//	  l(w) = max{ l(p) : l(p) <= l(v), p neighbor of u }  if l(u) < l(v)
//	  l(w) = min{ l(p) : l(p) >= l(v), p neighbor of u }  if l(u) > l(v)
//
// and Lemmas 6.1/6.4 prove R selects shortest, label-monotone paths. The
// lemma proofs are constructive — each hop flips toward v while staying
// inside the label window — and that construction only holds when R is
// read as selecting among the neighbors that lie on a shortest path to v
// (taken literally over all neighbors, the rule is non-shortest on
// hypercubes: from 000 toward 101 in a 3-cube it detours through 010).
// NextHop therefore applies the max/min-label selection over the
// distance-reducing neighbors inside the window, which reproduces both
// lemmas exactly (verified exhaustively by the tests), and falls back to
// the literal rule when no such neighbor exists (possible only for
// labelings other than the paper's, e.g. the "poor" Hamilton path of
// Fig. 6.10). Either way the chosen label moves strictly toward l(v) —
// the Hamilton-path successor/predecessor of u is always in the window —
// so routes stay inside one acyclic channel subnetwork.
func NextHop(t topology.Topology, l labeling.Labeling, u, v topology.NodeID) topology.NodeID {
	var buf [32]topology.NodeID
	return nextHopInto(t, l, u, v, buf[:0])
}

// nextHopInto is NextHop over a caller-provided neighbor buffer. The
// buffer crosses the Topology interface, so it always escapes; callers
// that walk whole routes (AppendRoute) hoist one buffer across the walk
// instead of paying one heap allocation per hop.
func nextHopInto(t topology.Topology, l labeling.Labeling, u, v topology.NodeID, buf []topology.NodeID) topology.NodeID {
	if u == v {
		panic("core: NextHop with u == v")
	}
	lu, lv := l.Label(u), l.Label(v)
	du := t.Distance(u, v)
	var (
		best      topology.NodeID
		bestLabel int
		found     bool
	)
	neighbors := t.Neighbors(u, buf)
	better := func(lp int) bool {
		if !found {
			return true
		}
		if lu < lv {
			return lp > bestLabel
		}
		return lp < bestLabel
	}
	// Preferred: distance-reducing neighbors strictly inside the label
	// window (the Lemma 6.1/6.4 construction).
	for _, p := range neighbors {
		lp := l.Label(p)
		inWindow := (lu < lv && lp > lu && lp <= lv) || (lu > lv && lp < lu && lp >= lv)
		if inWindow && t.Distance(p, v) == du-1 && better(lp) {
			best, bestLabel, found = p, lp, true
		}
	}
	if found {
		return best
	}
	return nextHopLiteralInto(t, l, u, v, buf)
}

// NextHopLiteral is the routing function R exactly as the dissertation's
// text states it: the max-label neighbor not exceeding l(v) (when routing
// up), or the min-label neighbor not below l(v) (when routing down), over
// all neighbors of u. It is always label-monotone — the Hamilton-path
// successor/predecessor qualifies — but not always minimal.
func NextHopLiteral(t topology.Topology, l labeling.Labeling, u, v topology.NodeID) topology.NodeID {
	var buf [32]topology.NodeID
	return nextHopLiteralInto(t, l, u, v, buf[:0])
}

func nextHopLiteralInto(t topology.Topology, l labeling.Labeling, u, v topology.NodeID, buf []topology.NodeID) topology.NodeID {
	if u == v {
		panic("core: NextHopLiteral with u == v")
	}
	lu, lv := l.Label(u), l.Label(v)
	var (
		best      topology.NodeID
		bestLabel int
		found     bool
	)
	for _, p := range t.Neighbors(u, buf) {
		lp := l.Label(p)
		if lu < lv {
			if lp <= lv && (!found || lp > bestLabel) {
				best, bestLabel, found = p, lp, true
			}
		} else {
			if lp >= lv && (!found || lp < bestLabel) {
				best, bestLabel, found = p, lp, true
			}
		}
	}
	if !found {
		// Cannot happen for a valid Hamiltonian labeling; fail loudly
		// instead of looping forever.
		panic(fmt.Sprintf("core: routing function R stuck at node %d toward %d", u, v))
	}
	return best
}

// RoutePath returns the node sequence (u, ..., v) selected by repeatedly
// applying the routing function R. By Lemmas 6.1 and 6.4 the labels along
// the sequence are strictly monotone, so the walk terminates.
func RoutePath(t topology.Topology, l labeling.Labeling, u, v topology.NodeID) []topology.NodeID {
	return AppendRoute(t, l, u, v, []topology.NodeID{u})
}

// AppendRoute appends the nodes strictly after u on the route from u to v
// selected by R, and returns the extended slice — RoutePath for callers
// that stitch multi-destination paths (the dual-path and multi-path
// preparation) without a heap-allocated leg per destination. One neighbor
// buffer serves the whole walk, so a leg costs one allocation instead of
// one per hop.
func AppendRoute(t topology.Topology, l labeling.Labeling, u, v topology.NodeID, dst []topology.NodeID) []topology.NodeID {
	var buf [32]topology.NodeID
	guard := 0
	for u != v {
		u = nextHopInto(t, l, u, v, buf[:0])
		dst = append(dst, u)
		if guard++; guard > t.Nodes()+1 {
			panic("core: routing function R failed to converge")
		}
	}
	return dst
}

// UnicastRouter is a deterministic one-to-one routing function: it
// returns the next hop from u toward dest. The deterministic routers of
// Section 2.3.2 (XY routing for the mesh, E-cube for the hypercube)
// implement it; they are the substrate for the multi-unicast baseline and
// for bypass-node forwarding in the greedy ST algorithm.
type UnicastRouter interface {
	// NextHopUnicast returns the next node on the route from u to dest;
	// u != dest.
	NextHopUnicast(u, dest topology.NodeID) topology.NodeID
}

// XYRouter routes X-first then Y on a 2D mesh — the deterministic
// deadlock-free scheme of Section 2.3.2 used by many machines.
type XYRouter struct {
	Mesh *topology.Mesh2D
}

// NextHopUnicast implements UnicastRouter.
func (r XYRouter) NextHopUnicast(u, dest topology.NodeID) topology.NodeID {
	ux, uy := r.Mesh.XY(u)
	dx, dy := r.Mesh.XY(dest)
	switch {
	case ux < dx:
		return r.Mesh.ID(ux+1, uy)
	case ux > dx:
		return r.Mesh.ID(ux-1, uy)
	case uy < dy:
		return r.Mesh.ID(ux, uy+1)
	case uy > dy:
		return r.Mesh.ID(ux, uy-1)
	default:
		panic("core: XY routing with u == dest")
	}
}

// ECubeRouter resolves address bits from the lowest dimension upward —
// the E-cube deterministic deadlock-free hypercube routing of
// Section 2.3.2.
type ECubeRouter struct {
	Cube *topology.Hypercube
}

// NextHopUnicast implements UnicastRouter.
func (r ECubeRouter) NextHopUnicast(u, dest topology.NodeID) topology.NodeID {
	diff := u ^ dest
	if diff == 0 {
		panic("core: E-cube routing with u == dest")
	}
	bit := diff & -diff // lowest differing dimension
	return u ^ bit
}

// XYZRouter is dimension-ordered routing on a 3D mesh: X, then Y, then Z.
type XYZRouter struct {
	Mesh *topology.Mesh3D
}

// NextHopUnicast implements UnicastRouter.
func (r XYZRouter) NextHopUnicast(u, dest topology.NodeID) topology.NodeID {
	ux, uy, uz := r.Mesh.XYZ(u)
	dx, dy, dz := r.Mesh.XYZ(dest)
	switch {
	case ux < dx:
		return r.Mesh.ID(ux+1, uy, uz)
	case ux > dx:
		return r.Mesh.ID(ux-1, uy, uz)
	case uy < dy:
		return r.Mesh.ID(ux, uy+1, uz)
	case uy > dy:
		return r.Mesh.ID(ux, uy-1, uz)
	case uz < dz:
		return r.Mesh.ID(ux, uy, uz+1)
	case uz > dz:
		return r.Mesh.ID(ux, uy, uz-1)
	default:
		panic("core: XYZ routing with u == dest")
	}
}

// UnicastPath returns the node sequence from u to dest under the given
// deterministic router.
func UnicastPath(r UnicastRouter, u, dest topology.NodeID) []topology.NodeID {
	path := []topology.NodeID{u}
	for u != dest {
		u = r.NextHopUnicast(u, dest)
		path = append(path, u)
	}
	return path
}

// RouterFor returns the canonical deterministic unicast router for the
// supported topologies, or an error for unsupported ones.
func RouterFor(t topology.Topology) (UnicastRouter, error) {
	switch tt := t.(type) {
	case *topology.Mesh2D:
		return XYRouter{Mesh: tt}, nil
	case *topology.Hypercube:
		return ECubeRouter{Cube: tt}, nil
	case *topology.Mesh3D:
		return XYZRouter{Mesh: tt}, nil
	default:
		return nil, fmt.Errorf("core: no deterministic router for %s", t.Name())
	}
}

// LabelingFor returns the dissertation's Hamiltonian labeling for the
// supported topologies: boustrophedon for the 2D mesh (Section 6.2.2),
// Gray-code for the hypercube (Section 6.3), the plane-serpentine
// extension for the 3D mesh (Section 4.3), and the mixed-radix reflected
// serpentine for the general k-ary n-cube (Section 2.1.3).
func LabelingFor(t topology.Topology) (labeling.Labeling, error) {
	switch tt := t.(type) {
	case *topology.Mesh2D:
		return labeling.NewMeshBoustrophedon(tt), nil
	case *topology.Hypercube:
		return labeling.NewHypercubeGray(tt), nil
	case *topology.Mesh3D:
		return labeling.NewMesh3DBoustrophedon(tt), nil
	case *topology.KAryNCube:
		return labeling.NewKAryNCubeSerpentine(tt), nil
	default:
		return nil, fmt.Errorf("core: no Hamiltonian labeling for %s", t.Name())
	}
}
